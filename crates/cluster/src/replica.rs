//! The cluster-time replica: a lease-gated primary assigning strictly
//! monotonic timestamps from the quorum Marzullo intersection, with a
//! view-change protocol for failover.

use std::collections::BTreeMap;

use tempo_core::marzullo::intersect_tolerating;
use tempo_core::{TimeEstimate, TimeInterval, Timestamp};
use tempo_net::{Actor, Context, NodeId};
use tempo_service::{ClusterState, HealthTracker, Lifecycle, Message, StableStore, TimeServer};
use tempo_telemetry::{Bus, EventKind, RefusalCause, TelemetryEvent};

use crate::config::{ClusterConfig, ClusterFault};
use crate::msg::ClusterMsg;

/// The cluster housekeeping timer. Bit 62 keeps the tag disjoint from
/// every tag the embedded server uses (small ordinals, epochs in bits
/// 32–61, the timeout flag in bit 63).
const TICK_TAG: u64 = 1 << 62;

/// Counters a replica accumulates, for experiment tables.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Views adopted (elections won or learned from peers).
    pub views_adopted: usize,
    /// Elections this replica started (including backoff retries).
    pub elections_started: usize,
    /// Elections this replica won.
    pub elections_won: usize,
    /// Lease grants (transitions from no lease to a valid lease).
    pub leases_granted: usize,
    /// Leases that expired without renewal.
    pub leases_expired: usize,
    /// Timestamps issued (released after quorum replication).
    pub issued: usize,
    /// Requests refused, by cause.
    pub refused_no_lease: usize,
    /// Requests refused because the replication quorum never acked.
    pub refused_no_quorum: usize,
    /// Requests refused while the inner server was booting.
    pub refused_booting: usize,
    /// Requests refused because the next timestamp would overrun the
    /// intersection's leading edge.
    pub refused_ahead: usize,
    /// Requests redirected to the believed primary.
    pub redirects: usize,
    /// Cluster-state rehydrations from stable storage.
    pub rehydrations: usize,
}

impl ClusterStats {
    /// Total refusals across all causes.
    #[must_use]
    pub fn refused(&self) -> usize {
        self.refused_no_lease + self.refused_no_quorum + self.refused_booting + self.refused_ahead
    }
}

/// The quorum intersection backing a granted lease, extrapolated
/// forward when timestamps are assigned between renewals.
#[derive(Debug, Clone, Copy)]
struct LeaseSnapshot {
    at: Timestamp,
    interval: TimeInterval,
}

/// A timestamp assigned but not yet released: the reply is withheld
/// until a quorum acks the replicated high-water mark.
#[derive(Debug, Clone, Copy)]
struct PendingIssue {
    request_id: u64,
    client: NodeId,
    issued_at: Timestamp,
    lo: Timestamp,
    hi: Timestamp,
}

/// A cluster-time replica: an embedded, unmodified [`TimeServer`]
/// (still running its interval resync protocol) plus the lease /
/// view-change / replication machinery that turns quorum intervals
/// into failover-safe monotonic timestamps.
#[derive(Debug)]
pub struct ClusterReplica {
    server: TimeServer,
    config: ClusterConfig,
    store: Box<dyn StableStore>,
    bus: Bus,
    me: usize,

    view: u64,
    high_water: u64,

    // --- primary role (volatile; cleared on crash or view change) ---
    lease_until: Option<Timestamp>,
    lease_snapshot: Option<LeaseSnapshot>,
    renew_seq: u64,
    renew_acks: Vec<Option<(TimeEstimate, u64)>>,
    last_renew_sent: Option<Timestamp>,
    backup_acked_hw: Vec<u64>,
    pendings: BTreeMap<u64, PendingIssue>,

    // --- election (volatile) ---
    candidate_view: Option<u64>,
    votes: Vec<bool>,
    vote_hw_max: u64,
    election_attempts: u32,
    election_not_before: Timestamp,
    last_renew_seen: Timestamp,

    health: HealthTracker,
    seen_crashes: usize,
    seen_restarts: usize,
    stats: ClusterStats,
}

impl ClusterReplica {
    /// Builds a replica around an embedded server, with a dedicated
    /// stable store for the cluster `(view, high-water)` record.
    ///
    /// The store is deliberately separate from the inner server's: the
    /// base record belongs to the resync protocol, the cluster record
    /// to this layer, and a deployment may give them different media.
    #[must_use]
    pub fn new(server: TimeServer, config: ClusterConfig, store: Box<dyn StableStore>) -> Self {
        let n = config.replicas.len();
        let health = HealthTracker::new(server.config().health);
        ClusterReplica {
            server,
            config,
            store,
            bus: Bus::default(),
            me: 0,
            view: 0,
            high_water: 0,
            lease_until: None,
            lease_snapshot: None,
            renew_seq: 0,
            renew_acks: vec![None; n],
            last_renew_sent: None,
            backup_acked_hw: vec![0; n],
            pendings: BTreeMap::new(),
            candidate_view: None,
            votes: vec![false; n],
            vote_hw_max: 0,
            election_attempts: 0,
            election_not_before: Timestamp::ZERO,
            last_renew_seen: Timestamp::ZERO,
            health,
            seen_crashes: 0,
            seen_restarts: 0,
            stats: ClusterStats::default(),
        }
    }

    /// Attaches the telemetry bus (to this layer and the inner server).
    pub fn attach_bus(&mut self, bus: Bus) {
        self.server.attach_bus(bus.clone());
        self.bus = bus;
    }

    /// The embedded time server.
    #[must_use]
    pub fn server(&self) -> &TimeServer {
        &self.server
    }

    /// Mutable access to the embedded time server.
    pub fn server_mut(&mut self) -> &mut TimeServer {
        &mut self.server
    }

    /// This replica's accumulated counters.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// The replica's current view.
    #[must_use]
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The replica's in-memory high-water mark.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Whether this replica currently believes it is the lease-holding
    /// primary.
    #[must_use]
    pub fn is_serving_primary(&self) -> bool {
        self.is_primary() && self.lease_snapshot.is_some() && self.lease_until.is_some()
    }

    fn is_primary(&self) -> bool {
        self.config.primary_of(self.view) == self.config.index
    }

    /// Microsecond ticks since the epoch for a timestamp (clamped at
    /// zero: cluster time starts at the epoch).
    fn us_tick(t: Timestamp) -> u64 {
        let s = t.as_secs();
        if s <= 0.0 {
            0
        } else {
            (s * 1e6) as u64
        }
    }

    // ----- actor plumbing -----

    /// Drives an inner-server callback through a derived context and
    /// re-emits its actions in cluster message space, then reconciles
    /// this layer with any lifecycle transition the callback caused.
    fn drive_inner(
        &mut self,
        ctx: &mut Context<'_, ClusterMsg>,
        f: impl FnOnce(&mut TimeServer, &mut Context<'_, Message>),
    ) {
        let mut inner = ctx.map_msg::<Message>();
        f(&mut self.server, &mut inner);
        let actions = inner.take_actions();
        for action in actions {
            match action {
                tempo_net::ActorAction::Send { to, msg } => ctx.send(to, ClusterMsg::Base(msg)),
                tempo_net::ActorAction::Timer { delay, tag } => ctx.set_timer(delay, tag),
            }
        }
        self.sync_lifecycle(ctx);
    }

    /// Detects inner crash/restart transitions (the inner lifecycle
    /// machine runs on its own timers) and applies their cluster-level
    /// consequences: a crash clears every volatile role, a restart
    /// rehydrates the cluster record from stable storage — or, under
    /// amnesia, from nothing.
    fn sync_lifecycle(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        let stats = self.server.stats();
        if stats.crashes > self.seen_crashes {
            self.seen_crashes = stats.crashes;
            self.clear_primary_role();
            self.clear_candidacy();
            // Volatile memory is gone: view and mark now live only in
            // the store until the restart path reloads them.
            self.view = 0;
            self.high_water = 0;
        }
        if stats.restarts > self.seen_restarts {
            self.seen_restarts = stats.restarts;
            if self.config.amnesia {
                self.store.wipe();
            }
            if let Some(cs) = self.store.load_cluster() {
                self.view = cs.view;
                self.high_water = cs.high_water;
                self.stats.rehydrations += 1;
                let (at, server, view, high_water) =
                    (ctx.now(), self.me, self.view, self.high_water);
                self.bus
                    .emit_with(EventKind::HwRehydrated, || TelemetryEvent::HwRehydrated {
                        at,
                        server,
                        view,
                        high_water,
                    });
            }
            // Give the cluster a grace period before electing against
            // whatever view we rejoined in.
            self.last_renew_seen = ctx.now();
            self.election_not_before = ctx.now() + self.config.election_timeout;
        }
    }

    fn clear_primary_role(&mut self) {
        self.lease_until = None;
        self.lease_snapshot = None;
        self.renew_acks.iter_mut().for_each(|a| *a = None);
        self.last_renew_sent = None;
        self.backup_acked_hw.iter_mut().for_each(|h| *h = 0);
        self.pendings.clear();
    }

    fn clear_candidacy(&mut self) {
        self.candidate_view = None;
        self.votes.iter_mut().for_each(|v| *v = false);
        self.vote_hw_max = 0;
    }

    fn persist_cluster(&mut self) {
        self.store.persist_cluster(ClusterState {
            view: self.view,
            high_water: self.high_water,
        });
    }

    /// Adopts a strictly higher view learned from a peer, surrendering
    /// any primary role or candidacy for an older view.
    fn observe_view(&mut self, view: u64, ctx: &mut Context<'_, ClusterMsg>) {
        if view <= self.view {
            return;
        }
        self.view = view;
        self.clear_primary_role();
        if self.candidate_view.is_some_and(|cv| cv <= view) {
            self.clear_candidacy();
        }
        self.persist_cluster();
        self.last_renew_seen = ctx.now();
        self.election_attempts = 0;
        self.stats.views_adopted += 1;
        let (at, server, high_water) = (ctx.now(), self.me, self.high_water);
        self.bus
            .emit_with(EventKind::ViewChange, || TelemetryEvent::ViewChange {
                at,
                server,
                view,
                high_water,
            });
    }

    fn refuse(
        &mut self,
        request_id: u64,
        cause: RefusalCause,
        client: NodeId,
        ctx: &mut Context<'_, ClusterMsg>,
    ) {
        match cause {
            RefusalCause::NoLease => self.stats.refused_no_lease += 1,
            RefusalCause::NoQuorum => self.stats.refused_no_quorum += 1,
            RefusalCause::Booting => self.stats.refused_booting += 1,
            RefusalCause::Ahead => self.stats.refused_ahead += 1,
        }
        let (at, server, view) = (ctx.now(), self.me, self.view);
        self.bus
            .emit_with(EventKind::TsRefused, || TelemetryEvent::TsRefused {
                at,
                server,
                view,
                cause,
            });
        ctx.send(
            client,
            ClusterMsg::TsRefused {
                request_id,
                view: self.view,
                cause,
            },
        );
    }

    // ----- the lease -----

    fn lease_valid(&self, now: Timestamp) -> bool {
        self.lease_until.is_some_and(|until| now < until) && self.lease_snapshot.is_some()
    }

    /// The lease intersection extrapolated to `now`: shifted by the
    /// elapsed time and widened on both edges by the drift bound, the
    /// same aging rule the paper's E(t) obeys between resets.
    fn extrapolated(&self, now: Timestamp) -> Option<TimeInterval> {
        let snap = self.lease_snapshot?;
        let dt = now - snap.at;
        if dt.is_negative() {
            return Some(snap.interval);
        }
        let widen = dt * self.server.config().drift_bound;
        Some(TimeInterval::new(
            snap.interval.lo() + dt - widen,
            snap.interval.hi() + dt + widen,
        ))
    }

    fn send_renewal(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        self.renew_seq += 1;
        self.renew_acks.iter_mut().for_each(|a| *a = None);
        self.last_renew_sent = Some(ctx.now());
        let msg = ClusterMsg::LeaseRenew {
            view: self.view,
            seq: self.renew_seq,
        };
        for (idx, &peer) in self.config.replicas.clone().iter().enumerate() {
            if idx == self.config.index {
                continue;
            }
            // E16 machinery: Dead peers are skipped except on probe
            // rounds, so a crashed backup costs nothing per renewal.
            if self.health.should_poll(peer, self.renew_seq) {
                ctx.send(peer, msg);
            }
        }
        // A single-replica cluster is its own quorum.
        self.try_grant(ctx);
    }

    /// Grants (or re-extends) the lease once a quorum of renewal acks
    /// is in: intersects the readings tolerating `f` liars, snapshots
    /// the result, and adopts the highest acked mark.
    fn try_grant(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        let acked = self.renew_acks.iter().flatten().count();
        if acked + 1 < self.config.quorum() {
            return;
        }
        if self.server.lifecycle() != Lifecycle::Active {
            return;
        }
        let now = ctx.now();
        let own = self.server.current_estimate(now);
        let mut intervals = Vec::with_capacity(acked + 1);
        intervals.push(own.interval());
        let mut max_acked_hw = 0;
        for ack in self.renew_acks.iter().flatten() {
            let (est, hw) = *ack;
            intervals.push(TimeInterval::from_center_radius(
                est.time(),
                est.error() + self.config.rtt_slack,
            ));
            max_acked_hw = max_acked_hw.max(hw);
        }
        let Some(interval) = intersect_tolerating(&intervals, self.config.max_faulty) else {
            return;
        };
        let was_valid = self.lease_valid(now);
        self.lease_until = Some(now + self.config.lease_duration);
        self.lease_snapshot = Some(LeaseSnapshot { at: now, interval });
        if max_acked_hw > self.high_water {
            self.high_water = max_acked_hw;
            self.persist_cluster();
        }
        if !was_valid {
            self.stats.leases_granted += 1;
            let (at, server, view) = (now, self.me, self.view);
            let until = self.lease_until.expect("just set");
            self.bus
                .emit_with(EventKind::LeaseGranted, || TelemetryEvent::LeaseGranted {
                    at,
                    server,
                    view,
                    until,
                });
        }
    }

    // ----- issuing -----

    fn handle_request(
        &mut self,
        request_id: u64,
        client: NodeId,
        ctx: &mut Context<'_, ClusterMsg>,
    ) {
        if self.server.lifecycle() == Lifecycle::Booting {
            self.refuse(request_id, RefusalCause::Booting, client, ctx);
            return;
        }
        if !self.is_primary() {
            self.stats.redirects += 1;
            ctx.send(
                client,
                ClusterMsg::TsRedirect {
                    request_id,
                    view: self.view,
                    primary: self.config.primary_of(self.view),
                },
            );
            return;
        }
        let now = ctx.now();
        if !self.lease_valid(now) {
            self.refuse(request_id, RefusalCause::NoLease, client, ctx);
            return;
        }
        let interval = self
            .extrapolated(now)
            .expect("lease valid implies snapshot");
        let now_tick = Self::us_tick(interval.midpoint());
        let hi_tick = Self::us_tick(interval.hi());
        let ts = now_tick.max(self.high_water + 1);
        if ts > hi_tick {
            // Issuing would place the timestamp beyond every instant
            // the quorum considers possible — refuse and let real time
            // catch up with the high-water mark.
            self.refuse(request_id, RefusalCause::Ahead, client, ctx);
            return;
        }
        self.high_water = ts;
        if self.config.fault == Some(ClusterFault::SkipHwFlush) {
            // Injected bug: release immediately, with the mark neither
            // persisted nor replicated. In-memory monotonicity still
            // holds — until the first crash.
            self.release(ts, request_id, client, interval.lo(), interval.hi(), ctx);
            return;
        }
        self.persist_cluster();
        self.pendings.insert(
            ts,
            PendingIssue {
                request_id,
                client,
                issued_at: now,
                lo: interval.lo(),
                hi: interval.hi(),
            },
        );
        self.broadcast_hw(ctx);
        self.try_release(ctx);
    }

    fn broadcast_hw(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        let msg = ClusterMsg::HwUpdate {
            view: self.view,
            high_water: self.high_water,
        };
        for (idx, &peer) in self.config.replicas.clone().iter().enumerate() {
            if idx != self.config.index {
                ctx.send(peer, msg);
            }
        }
    }

    fn release(
        &mut self,
        ts: u64,
        request_id: u64,
        client: NodeId,
        lo: Timestamp,
        hi: Timestamp,
        ctx: &mut Context<'_, ClusterMsg>,
    ) {
        self.stats.issued += 1;
        let (at, server, view) = (ctx.now(), self.me, self.view);
        self.bus
            .emit_with(EventKind::TsIssued, || TelemetryEvent::TsIssued {
                at,
                server,
                view,
                timestamp: ts,
                lo,
                hi,
            });
        ctx.send(
            client,
            ClusterMsg::TsReply {
                request_id,
                view: self.view,
                timestamp: ts,
            },
        );
    }

    /// Releases every pending issue whose mark a quorum has durably
    /// acked, in timestamp order (so the released stream is itself
    /// monotonic).
    fn try_release(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        loop {
            let Some((&ts, &pending)) = self.pendings.iter().next() else {
                return;
            };
            let acked = self
                .backup_acked_hw
                .iter()
                .enumerate()
                .filter(|&(idx, &hw)| idx != self.config.index && hw >= ts)
                .count();
            if acked + 1 < self.config.quorum() {
                return;
            }
            self.pendings.remove(&ts);
            self.release(
                ts,
                pending.request_id,
                pending.client,
                pending.lo,
                pending.hi,
                ctx,
            );
        }
    }

    // ----- elections -----

    fn start_election(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        let n = self.config.n() as u64;
        let base = self.candidate_view.unwrap_or(self.view);
        // The smallest view above `base` whose primary is this replica.
        let mut v = base + 1;
        while self.config.primary_of(v) != self.config.index {
            v += 1;
        }
        debug_assert!(v <= base + n);
        self.clear_candidacy();
        self.candidate_view = Some(v);
        self.vote_hw_max = self.high_water;
        self.stats.elections_started += 1;
        let backoff = 1u32 << self.election_attempts.min(5);
        self.election_not_before = ctx.now() + self.config.request_timeout * f64::from(backoff);
        self.election_attempts += 1;
        let msg = ClusterMsg::ViewChangeReq { view: v };
        for (idx, &peer) in self.config.replicas.clone().iter().enumerate() {
            if idx != self.config.index {
                ctx.send(peer, msg);
            }
        }
        // A single replica elects itself.
        self.try_win(ctx);
    }

    fn try_win(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        let Some(v) = self.candidate_view else { return };
        let granted = self.votes.iter().filter(|&&b| b).count();
        if granted + 1 < self.config.quorum() {
            return;
        }
        self.view = v;
        self.high_water = self.high_water.max(self.vote_hw_max);
        self.clear_candidacy();
        self.clear_primary_role();
        self.persist_cluster();
        self.election_attempts = 0;
        self.stats.elections_won += 1;
        self.stats.views_adopted += 1;
        let (at, server, view, high_water) = (ctx.now(), self.me, self.view, self.high_water);
        self.bus
            .emit_with(EventKind::ViewChange, || TelemetryEvent::ViewChange {
                at,
                server,
                view,
                high_water,
            });
        // Serve only once a lease quorum confirms the new reign.
        self.send_renewal(ctx);
    }

    // ----- housekeeping -----

    fn tick(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        if self.server.lifecycle() == Lifecycle::Crashed {
            return;
        }
        let now = ctx.now();

        // Lease expiry.
        if self.is_primary() {
            if let Some(until) = self.lease_until {
                if now >= until {
                    self.lease_until = None;
                    self.lease_snapshot = None;
                    self.stats.leases_expired += 1;
                    let (at, server, view) = (now, self.me, self.view);
                    self.bus
                        .emit_with(EventKind::LeaseExpired, || TelemetryEvent::LeaseExpired {
                            at,
                            server,
                            view,
                        });
                }
            }
        }

        // Renewal cadence (the primary's heartbeat doubles as the
        // backups' liveness signal).
        if self.is_primary()
            && self.server.lifecycle() == Lifecycle::Active
            && self
                .last_renew_sent
                .is_none_or(|at| now - at >= self.config.renew_period)
        {
            // Backups that never acked the previous renewal take a
            // health strike (the E16 state machine demotes them
            // Healthy → Suspect → Dead on consecutive misses).
            if self.last_renew_sent.is_some() {
                for (idx, &peer) in self.config.replicas.clone().iter().enumerate() {
                    if idx == self.config.index {
                        continue;
                    }
                    if self.renew_acks[idx].is_none() {
                        self.health.record_timeout(peer);
                    }
                }
            }
            self.send_renewal(ctx);
        }

        // Pending sweep: replication that cannot reach a quorum within
        // the request timeout is refused, not left to dangle.
        let expired: Vec<u64> = self
            .pendings
            .iter()
            .filter(|(_, p)| now - p.issued_at > self.config.request_timeout)
            .map(|(&ts, _)| ts)
            .collect();
        for ts in expired {
            let pending = self.pendings.remove(&ts).expect("collected above");
            self.refuse(
                pending.request_id,
                RefusalCause::NoQuorum,
                pending.client,
                ctx,
            );
        }
        if !self.pendings.is_empty() {
            // Retransmit the latest mark; acks are cumulative.
            self.broadcast_hw(ctx);
        }

        // Election: a backup whose primary has gone silent past the
        // rank-staggered timeout campaigns for the succession.
        if self.server.lifecycle() == Lifecycle::Active && !self.is_serving_primary() {
            let rank = self.config.rank_behind(self.view) as f64;
            let stagger = self.config.election_timeout * (0.25 * rank);
            let silent = now - self.last_renew_seen > self.config.election_timeout + stagger;
            let may_retry = now >= self.election_not_before;
            let idle_candidate = self.candidate_view.is_none() && !self.is_primary();
            let stalled_candidate = self.candidate_view.is_some();
            if silent && may_retry && (idle_candidate || stalled_candidate) {
                self.start_election(ctx);
            }
        }
    }

    // ----- cluster message dispatch -----

    fn on_cluster_message(
        &mut self,
        from: NodeId,
        msg: ClusterMsg,
        ctx: &mut Context<'_, ClusterMsg>,
    ) {
        match msg {
            ClusterMsg::Base(_) => unreachable!("routed before dispatch"),
            ClusterMsg::TsRequest { request_id, .. } => self.handle_request(request_id, from, ctx),
            ClusterMsg::TsReply { .. }
            | ClusterMsg::TsRefused { .. }
            | ClusterMsg::TsRedirect { .. } => {
                // Client-facing traffic; a replica ignores strays.
            }
            ClusterMsg::LeaseRenew { view, seq } => {
                self.observe_view(view, ctx);
                if view < self.view {
                    // A primary deposed while down would otherwise renew
                    // into the void forever: tell it about the succession.
                    self.nack_stale(from, ctx);
                    return;
                }
                if self.server.lifecycle() != Lifecycle::Active {
                    return;
                }
                self.last_renew_seen = ctx.now();
                self.election_attempts = 0;
                let mut estimate = self.server.current_estimate(ctx.now());
                if let Some(ClusterFault::LieEstimate { shift }) = self.config.fault {
                    estimate = TimeEstimate::new(estimate.time() + shift, estimate.error());
                }
                let high_water = if self.config.fault == Some(ClusterFault::UnderstateHw) {
                    0
                } else {
                    self.high_water
                };
                ctx.send(
                    from,
                    ClusterMsg::LeaseAck {
                        view,
                        seq,
                        estimate,
                        high_water,
                    },
                );
            }
            ClusterMsg::LeaseAck {
                view,
                seq,
                estimate,
                high_water,
            } => {
                if view != self.view || !self.is_primary() || seq != self.renew_seq {
                    return;
                }
                let Some(idx) = self.index_of(from) else {
                    return;
                };
                self.health.record_reply(from);
                self.renew_acks[idx] = Some((estimate, high_water));
                self.try_grant(ctx);
            }
            ClusterMsg::ViewChangeReq { view } => {
                if view > self.view {
                    self.observe_view(view, ctx);
                    let high_water = if self.config.fault == Some(ClusterFault::UnderstateHw) {
                        0
                    } else {
                        self.high_water
                    };
                    ctx.send(
                        from,
                        ClusterMsg::ViewChangeAck {
                            view,
                            ok: true,
                            high_water,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        ClusterMsg::ViewChangeAck {
                            view: self.view,
                            ok: false,
                            high_water: self.high_water,
                        },
                    );
                }
            }
            ClusterMsg::ViewChangeAck {
                view,
                ok,
                high_water,
            } => {
                if ok {
                    if self.candidate_view == Some(view) {
                        let Some(idx) = self.index_of(from) else {
                            return;
                        };
                        self.health.record_reply(from);
                        self.votes[idx] = true;
                        self.vote_hw_max = self.vote_hw_max.max(high_water);
                        self.try_win(ctx);
                    }
                } else {
                    self.observe_view(view, ctx);
                }
            }
            ClusterMsg::HwUpdate { view, high_water } => {
                self.observe_view(view, ctx);
                if view < self.view {
                    self.nack_stale(from, ctx);
                    return;
                }
                if high_water > self.high_water {
                    self.high_water = high_water;
                }
                self.persist_cluster();
                let acked = if self.config.fault == Some(ClusterFault::UnderstateHw) {
                    0
                } else {
                    self.high_water
                };
                ctx.send(
                    from,
                    ClusterMsg::HwAck {
                        view,
                        high_water: acked,
                    },
                );
            }
            ClusterMsg::HwAck { view, high_water } => {
                if view != self.view || !self.is_primary() {
                    return;
                }
                let Some(idx) = self.index_of(from) else {
                    return;
                };
                self.health.record_reply(from);
                if high_water > self.backup_acked_hw[idx] {
                    self.backup_acked_hw[idx] = high_water;
                }
                self.try_release(ctx);
            }
        }
    }

    fn index_of(&self, peer: NodeId) -> Option<usize> {
        self.config.replicas.iter().position(|&p| p == peer)
    }

    /// Answers a stale-view sender with a refused view-change ack
    /// carrying our (higher) view — the handler for `ok: false` adopts
    /// it, so a deposed primary catches up instead of renewing forever.
    fn nack_stale(&mut self, to: NodeId, ctx: &mut Context<'_, ClusterMsg>) {
        ctx.send(
            to,
            ClusterMsg::ViewChangeAck {
                view: self.view,
                ok: false,
                high_water: self.high_water,
            },
        );
    }
}

impl Actor for ClusterReplica {
    type Msg = ClusterMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ClusterMsg>) {
        self.me = ctx.label();
        if let Some(cs) = self.store.load_cluster() {
            self.view = cs.view;
            self.high_water = cs.high_water;
            self.stats.rehydrations += 1;
            let (at, server, view, high_water) = (ctx.now(), self.me, self.view, self.high_water);
            self.bus
                .emit_with(EventKind::HwRehydrated, || TelemetryEvent::HwRehydrated {
                    at,
                    server,
                    view,
                    high_water,
                });
        }
        self.last_renew_seen = ctx.now();
        self.election_not_before = ctx.now();
        self.drive_inner(ctx, |server, inner| server.on_start(inner));
        ctx.set_timer(self.config.tick, TICK_TAG);
    }

    fn on_message(&mut self, from: NodeId, msg: ClusterMsg, ctx: &mut Context<'_, ClusterMsg>) {
        if let ClusterMsg::Base(base) = msg {
            self.drive_inner(ctx, |server, inner| server.on_message(from, base, inner));
            return;
        }
        // A crashed replica is deaf to the cluster protocol too; the
        // inner lifecycle machine models the deafness for base traffic.
        if self.server.lifecycle() == Lifecycle::Crashed {
            return;
        }
        self.on_cluster_message(from, msg, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, ClusterMsg>) {
        if tag == TICK_TAG {
            self.tick(ctx);
            // Always re-armed — the housekeeping loop survives crashes
            // so the restart path has a heartbeat to come back on.
            ctx.set_timer(self.config.tick, TICK_TAG);
            return;
        }
        self.drive_inner(ctx, |server, inner| server.on_timer(tag, inner));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{AuditClient, AuditClientConfig};
    use crate::node::ClusterNode;
    use tempo_clocks::SimClock;
    use tempo_core::DriftRate;
    use tempo_net::{DelayModel, NetConfig, Topology, World};
    use tempo_service::{MemoryStore, ServerConfig, ServerFault, Strategy};

    fn dur(s: f64) -> tempo_core::Duration {
        tempo_core::Duration::from_secs(s)
    }

    /// Cluster timings fast enough for short test runs.
    fn fast(config: ClusterConfig) -> ClusterConfig {
        config
            .lease_duration(dur(0.4))
            .renew_period(dur(0.1))
            .election_timeout(dur(0.3))
            .request_timeout(dur(0.5))
            .tick(dur(0.05))
    }

    /// A replica whose inner clock starts `offset` seconds off true
    /// time, claiming `error` of initial uncertainty, resyncing so
    /// rarely the offset persists for the whole run.
    fn skewed_replica(
        replicas: Vec<NodeId>,
        index: usize,
        offset: f64,
        error: f64,
        fault: Option<ServerFault>,
    ) -> ClusterReplica {
        let clock = SimClock::builder()
            .seed(index as u64 + 1)
            .initial_value(Timestamp::from_secs(offset))
            .build();
        let mut server_config = ServerConfig::new(Strategy::Im, DriftRate::new(1e-6))
            .resync_period(dur(500.0))
            .collect_window(dur(0.5))
            .initial_error(dur(error))
            .jitter(0.0);
        if let Some(fault) = fault {
            server_config = server_config.fault(fault);
        }
        let server = TimeServer::new(clock, server_config);
        let cluster = fast(ClusterConfig::new(replicas, index));
        ClusterReplica::new(server, cluster, Box::new(MemoryStore::new()))
    }

    fn run_world(nodes: Vec<ClusterNode>, until: f64, seed: u64) -> World<ClusterNode> {
        let n = nodes.len();
        let mut world = World::new(
            nodes,
            Topology::full_mesh(n),
            NetConfig::with_delay(DelayModel::Constant(dur(0.005))),
            seed,
        );
        world.run_until(Timestamp::from_secs(until));
        world
    }

    #[test]
    fn failover_preserves_monotonicity() {
        let replicas: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let nodes: Vec<ClusterNode> = vec![
            skewed_replica(
                replicas.clone(),
                0,
                0.0,
                0.05,
                Some(ServerFault::crash_restart(
                    Timestamp::from_secs(20.0),
                    dur(10.0),
                    false,
                )),
            )
            .into(),
            skewed_replica(replicas.clone(), 1, 0.0, 0.05, None).into(),
            skewed_replica(replicas.clone(), 2, 0.0, 0.05, None).into(),
            AuditClient::new(
                AuditClientConfig::new(replicas)
                    .period(dur(0.1))
                    .request_timeout(dur(0.5)),
            )
            .into(),
        ];
        let world = run_world(nodes, 60.0, 11);
        let actors = world.actors();
        let client = actors[3].as_client().unwrap();
        assert_eq!(client.stats().regressions, 0, "{:?}", client.stats());
        let trail = client.trail();
        for pair in trail.windows(2) {
            assert!(pair[1].timestamp > pair[0].timestamp);
        }
        // The workload survived the crash: issues before and well after.
        assert!(trail.first().unwrap().at < Timestamp::from_secs(20.0));
        assert!(trail.last().unwrap().at > Timestamp::from_secs(40.0));
        // Someone took over.
        let successor = actors[1].as_replica().unwrap();
        assert!(
            successor.stats().elections_won >= 1,
            "{:?}",
            successor.stats()
        );
        assert!(successor.view() >= 1);
    }

    #[test]
    fn quorum_lost_requests_are_refused() {
        let replicas: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let crash = |at: f64| Some(ServerFault::crash_at(Timestamp::from_secs(at)));
        let nodes: Vec<ClusterNode> = vec![
            skewed_replica(replicas.clone(), 0, 0.0, 0.05, None).into(),
            skewed_replica(replicas.clone(), 1, 0.0, 0.05, crash(10.0)).into(),
            skewed_replica(replicas.clone(), 2, 0.0, 0.05, crash(10.0)).into(),
            AuditClient::new(
                AuditClientConfig::new(replicas)
                    .period(dur(0.1))
                    .request_timeout(dur(0.5)),
            )
            .into(),
        ];
        let world = run_world(nodes, 40.0, 13);
        let actors = world.actors();
        let client = actors[3].as_client().unwrap();
        let primary = actors[0].as_replica().unwrap();
        // With both backups dead the lease cannot renew: the primary
        // refuses rather than risk an unreplicated timestamp.
        assert!(primary.stats().leases_expired >= 1, "{:?}", primary.stats());
        assert!(client.stats().refused > 0, "{:?}", client.stats());
        assert_eq!(client.stats().regressions, 0);
        // Nothing was issued after the lease ran out.
        let last = client.trail().last().unwrap();
        assert!(
            last.at < Timestamp::from_secs(11.0),
            "issued at {} after quorum loss",
            last.at
        );
    }

    /// The injected skip-the-flush bug is *observable*: with a fast
    /// primary clock and a quick failover, the successor (which never
    /// saw the unreplicated high-water mark) re-issues lower
    /// timestamps. The same scenario with the bug absent is clean —
    /// this pair of runs is what the fuzzer self-test automates.
    #[test]
    fn skip_hw_flush_causes_regression_after_failover() {
        let run = |inject: bool| {
            let replicas: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            let mut fast_primary = skewed_replica(
                replicas.clone(),
                0,
                2.0, // clock runs 2 s ahead, within its claimed error
                5.0,
                Some(ServerFault::crash_at(Timestamp::from_secs(10.0))),
            );
            if inject {
                fast_primary.config.fault = Some(ClusterFault::SkipHwFlush);
            }
            let nodes: Vec<ClusterNode> = vec![
                fast_primary.into(),
                skewed_replica(replicas.clone(), 1, 0.0, 5.0, None).into(),
                skewed_replica(replicas.clone(), 2, 0.0, 5.0, None).into(),
                AuditClient::new(
                    AuditClientConfig::new(replicas)
                        .period(dur(0.05))
                        .request_timeout(dur(0.3)),
                )
                .into(),
            ];
            let world = run_world(nodes, 25.0, 17);
            let actors = world.actors();
            actors[3].as_client().unwrap().stats()
        };
        let buggy = run(true);
        assert!(buggy.regressions > 0, "bug not observable: {buggy:?}");
        let clean = run(false);
        assert_eq!(clean.regressions, 0, "{clean:?}");
    }
}
