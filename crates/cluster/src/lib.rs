//! ClusterTime: failover-safe monotonic cluster timestamps.
//!
//! The paper's time service answers "what time is it?" with an
//! interval; this crate layers the other thing distributed systems
//! want from a clock — a *strictly monotonic* cluster-wide timestamp
//! that never goes backward, not across primary crashes, not across
//! view changes, not across amnesia restarts.
//!
//! The design is lease-gated primary assignment over the quorum
//! Marzullo intersection:
//!
//! * **One primary per view.** View `v`'s primary is replica
//!   `v mod n`. A replica only assigns timestamps while it holds a
//!   *lease*: a quorum of replicas recently acked its renewal
//!   heartbeat, each ack carrying the backup's own interval reading.
//!   The primary intersects those readings with
//!   [`tempo_core::marzullo::intersect_tolerating`] (so up to `f`
//!   lying replicas
//!   cannot poison the result) and assigns
//!   `timestamp = max(intersection.now, high_water + 1)` in
//!   microsecond ticks.
//! * **Durable high water before release.** Before a timestamp leaves
//!   the building the primary persists it via
//!   [`tempo_service::StableStore`] *and* replicates it to a quorum of
//!   backups ([`ClusterMsg::HwUpdate`] / [`ClusterMsg::HwAck`]): the
//!   reply is withheld until a quorum has the mark on stable
//!   storage. A new primary's election quorum therefore always
//!   intersects the release quorum, so its catch-up
//!   (`high_water = max over acks`) can never miss an issued
//!   timestamp — even if the old primary restarts with amnesia.
//! * **Refusal over regression.** With no lease, no quorum, a booting
//!   inner server, or an intersection the next timestamp would
//!   overrun, the replica answers [`ClusterMsg::TsRefused`] — the
//!   degraded mode is *no service*, never wrong service.
//!
//! The crate is sans-io in the same style as
//! [`tempo_service::TimeServer`]: [`ClusterReplica`] embeds an
//! unmodified `TimeServer` (driving it through
//! [`tempo_net::Context::map_msg`]) and both run under any
//! [`tempo_net::Transport`] — the simulator's `World`, or the real
//! UDP runtime via the `TYPE_TS_*` wire frames in
//! [`tempo_service::wire`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod config;
mod msg;
mod node;
mod replica;

pub use client::{AuditClient, AuditClientConfig, ClientStats};
pub use config::{ClusterConfig, ClusterFault};
pub use msg::ClusterMsg;
pub use node::ClusterNode;
pub use replica::{ClusterReplica, ClusterStats};
