//! The §1.1 monotonic-clock adapter.
//!
//! The paper does not require service clocks to be locally monotonic —
//! they are freely set backward as well as forward. "A client, however,
//! may require that the local clock is monotonic. Such a clock may be
//! implemented based on a nonmonotonic clock by temporarily running the
//! monotonic clock more slowly when the nonmonotonic clock is set
//! backwards." [`MonotonicClock`] is exactly that adapter.

use tempo_core::{Duration, Timestamp};

/// Turns a stream of possibly-backward-stepping raw clock readings into
/// a monotonic sequence by slewing.
///
/// While the raw clock is ahead of (or equal to) the monotonic value,
/// readings pass through unchanged. After a backward step the monotonic
/// clock advances at `slew_rate` (< 1) of the raw clock's progress until
/// the raw clock catches up.
///
/// ```
/// use tempo_clocks::MonotonicClock;
/// use tempo_core::Timestamp;
///
/// let mut mono = MonotonicClock::new(0.5);
/// assert_eq!(mono.observe(Timestamp::from_secs(10.0)), Timestamp::from_secs(10.0));
/// // The raw clock is stepped back to 6s: the monotonic clock holds...
/// assert_eq!(mono.observe(Timestamp::from_secs(6.0)), Timestamp::from_secs(10.0));
/// // ...and then advances at half speed (2 raw seconds → 1 monotonic).
/// assert_eq!(mono.observe(Timestamp::from_secs(8.0)), Timestamp::from_secs(11.0));
/// ```
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    slew_rate: f64,
    state: Option<State>,
}

#[derive(Debug, Clone, Copy)]
struct State {
    last_raw: Timestamp,
    last_mono: Timestamp,
}

impl MonotonicClock {
    /// Creates the adapter.
    ///
    /// `slew_rate` is the fraction of raw-clock progress passed through
    /// while recovering from a backward step.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < slew_rate < 1` (a rate of 1 would never let
    /// the raw clock catch up; 0 would freeze the monotonic clock).
    #[must_use]
    pub fn new(slew_rate: f64) -> Self {
        assert!(
            slew_rate.is_finite() && slew_rate > 0.0 && slew_rate < 1.0,
            "slew rate must be in (0, 1), got {slew_rate}"
        );
        MonotonicClock {
            slew_rate,
            state: None,
        }
    }

    /// The configured slew rate.
    #[must_use]
    pub fn slew_rate(&self) -> f64 {
        self.slew_rate
    }

    /// Feeds the next raw reading and returns the monotonic reading.
    ///
    /// Raw readings may step backward (after a reset); between steps
    /// they must advance, which the caller gets for free by reading the
    /// underlying clock at non-decreasing real times.
    pub fn observe(&mut self, raw: Timestamp) -> Timestamp {
        let mono = match self.state {
            None => raw,
            Some(State {
                last_raw,
                last_mono,
            }) => {
                if raw >= last_mono {
                    // Caught up (or never behind): pass through.
                    raw
                } else {
                    // Behind (after a backward step): slew. Progress of
                    // the raw clock since the last observation, floored
                    // at zero for the step itself.
                    let progress = (raw - last_raw).max(Duration::ZERO);
                    let candidate = last_mono + progress * self.slew_rate;
                    // Never overtake the point where pass-through resumes.
                    if raw >= candidate {
                        raw
                    } else {
                        candidate
                    }
                }
            }
        };
        self.state = Some(State {
            last_raw: raw,
            last_mono: mono,
        });
        mono
    }

    /// The most recent monotonic reading, if any observation happened.
    #[must_use]
    pub fn last(&self) -> Option<Timestamp> {
        self.state.map(|s| s.last_mono)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn passes_through_monotonic_input() {
        let mut m = MonotonicClock::new(0.5);
        for i in 0..10 {
            let t = ts(f64::from(i));
            assert_eq!(m.observe(t), t);
        }
        assert_eq!(m.last(), Some(ts(9.0)));
    }

    #[test]
    fn backward_step_holds_then_slews() {
        let mut m = MonotonicClock::new(0.5);
        assert_eq!(m.observe(ts(10.0)), ts(10.0));
        // Step back 4 s.
        assert_eq!(m.observe(ts(6.0)), ts(10.0));
        // Raw advances 2 s → mono advances 1 s.
        assert_eq!(m.observe(ts(8.0)), ts(11.0));
        assert_eq!(m.observe(ts(10.0)), ts(12.0));
    }

    #[test]
    fn raw_clock_eventually_catches_up() {
        let mut m = MonotonicClock::new(0.5);
        let _ = m.observe(ts(10.0));
        let _ = m.observe(ts(6.0)); // step back 4 s
                                    // Raw needs 8 s of progress to close a 4 s gap at slew 0.5.
        assert_eq!(m.observe(ts(14.0)), ts(14.0));
        // Fully recovered: pass-through resumes.
        assert_eq!(m.observe(ts(15.0)), ts(15.0));
    }

    #[test]
    fn output_is_always_monotonic() {
        let mut m = MonotonicClock::new(0.25);
        let raw = [5.0, 7.0, 3.0, 4.0, 2.0, 9.0, 8.5, 20.0];
        let mut last = f64::MIN;
        for &r in &raw {
            let v = m.observe(ts(r)).as_secs();
            assert!(v >= last, "monotonicity violated: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn catch_up_never_overshoots() {
        let mut m = MonotonicClock::new(0.9);
        let _ = m.observe(ts(10.0));
        let _ = m.observe(ts(9.9)); // tiny step back
                                    // A big raw jump: mono must equal raw, not exceed it.
        assert_eq!(m.observe(ts(100.0)), ts(100.0));
    }

    #[test]
    fn repeated_backward_steps() {
        let mut m = MonotonicClock::new(0.5);
        let _ = m.observe(ts(10.0));
        let _ = m.observe(ts(8.0)); // back 2
        let v1 = m.observe(ts(9.0)); // slewing
        let _ = m.observe(ts(5.0)); // back again mid-slew
        let v2 = m.observe(ts(6.0));
        assert!(v2 >= v1);
    }

    #[test]
    #[should_panic(expected = "slew rate must be in")]
    fn slew_rate_one_rejected() {
        let _ = MonotonicClock::new(1.0);
    }

    #[test]
    #[should_panic(expected = "slew rate must be in")]
    fn slew_rate_zero_rejected() {
        let _ = MonotonicClock::new(0.0);
    }

    #[test]
    fn accessors() {
        let m = MonotonicClock::new(0.5);
        assert_eq!(m.slew_rate(), 0.5);
        assert_eq!(m.last(), None);
    }

    #[test]
    fn works_with_a_sim_clock_being_reset() {
        use crate::{DriftModel, SimClock};
        let mut clock = SimClock::builder()
            .drift(DriftModel::Constant(0.05)) // fast clock
            .build();
        let mut mono = MonotonicClock::new(0.5);
        let mut last = f64::MIN;
        for i in 1..=100 {
            let now = ts(f64::from(i));
            // Every 10 s a supervisor steps the fast clock back to true
            // time.
            if i % 10 == 0 {
                let _ = clock.set(now, now);
            }
            let v = mono.observe(clock.read(now)).as_secs();
            assert!(v >= last);
            last = v;
        }
    }
}
