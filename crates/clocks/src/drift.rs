//! Drift processes for simulated clocks.
//!
//! A drift model produces the clock's instantaneous *drift* — the
//! deviation of its rate from one second per second. A clock with drift
//! `d` advances `1 + d` clock-seconds per real second. The paper's
//! analysis only assumes `|d| ≤ δ` for a *claimed* bound `δ`; the models
//! here generate processes inside (or, for fault experiments,
//! deliberately outside) such an envelope.

use rand::Rng;

use tempo_core::Duration;

/// A drift-generating process.
///
/// Piecewise models hold the drift constant over a *quantum* of real
/// time and then resample; this matches the paper's treatment of drift
/// as the random variable "exhibited between two successive readings"
/// (Theorem 8).
#[derive(Debug, Clone, PartialEq)]
pub enum DriftModel {
    /// A constant drift: the clock runs steadily fast (`> 0`) or slow
    /// (`< 0`).
    Constant(f64),
    /// A bounded random walk: every `quantum` the drift moves by a
    /// normal step with standard deviation `sigma`, clamped to
    /// `[-bound, bound]`. Models ageing/temperature-wandering quartz.
    RandomWalk {
        /// Standard deviation of each step.
        sigma: f64,
        /// Hard clamp on the drift magnitude.
        bound: f64,
        /// Real-time interval between steps.
        quantum: Duration,
    },
    /// Diurnal-style variation: `drift(t) = amplitude · sin(2πt/period +
    /// phase)`, evaluated at the start of each quantum (one-tenth of the
    /// period).
    Sinusoidal {
        /// Peak drift magnitude.
        amplitude: f64,
        /// Oscillation period in real time.
        period: Duration,
        /// Phase offset in radians.
        phase: f64,
    },
    /// Independent uniform drift per quantum: each quantum the drift is
    /// drawn afresh from `[-bound, bound]` — the i.i.d. model of
    /// Theorem 8.
    UniformResample {
        /// Half-width of the uniform distribution.
        bound: f64,
        /// Real-time interval between redraws.
        quantum: Duration,
    },
    /// A fully scripted drift: `(start_second, drift)` segments sorted
    /// by start time; the drift before the first segment is the first
    /// segment's value. Deterministic — made for writing precise test
    /// scenarios ("runs 100 ppm fast for an hour, then 50 ppm slow").
    Scripted {
        /// `(elapsed_seconds, drift)` breakpoints, ascending.
        segments: Vec<(f64, f64)>,
        /// Evaluation granularity (the clock re-reads the script this
        /// often; choose it at or below the shortest segment).
        quantum: Duration,
    },
}

impl DriftModel {
    /// A perfect clock (zero drift).
    #[must_use]
    pub fn perfect() -> Self {
        DriftModel::Constant(0.0)
    }

    /// The real-time quantum after which the drift must be re-evaluated,
    /// or `None` for constant drift.
    #[must_use]
    pub(crate) fn quantum(&self) -> Option<Duration> {
        match self {
            DriftModel::Constant(_) => None,
            DriftModel::RandomWalk { quantum, .. }
            | DriftModel::UniformResample { quantum, .. }
            | DriftModel::Scripted { quantum, .. } => Some(*quantum),
            DriftModel::Sinusoidal { period, .. } => Some(*period / 10.0),
        }
    }

    /// The largest drift magnitude this model can produce — useful for
    /// choosing an honest claimed bound `δ`.
    #[must_use]
    pub fn max_drift(&self) -> f64 {
        match self {
            DriftModel::Constant(d) => d.abs(),
            DriftModel::RandomWalk { bound, .. } | DriftModel::UniformResample { bound, .. } => {
                *bound
            }
            DriftModel::Sinusoidal { amplitude, .. } => amplitude.abs(),
            DriftModel::Scripted { segments, .. } => {
                segments.iter().map(|(_, d)| d.abs()).fold(0.0, f64::max)
            }
        }
    }

    /// Evaluates the drift for the quantum beginning at real time
    /// `elapsed` (seconds since the clock started), given the previous
    /// drift value.
    pub(crate) fn sample<R: Rng>(&self, elapsed_secs: f64, previous: f64, rng: &mut R) -> f64 {
        match self {
            DriftModel::Constant(d) => *d,
            DriftModel::RandomWalk { sigma, bound, .. } => {
                let step = normal_sample(rng) * sigma;
                (previous + step).clamp(-bound, *bound)
            }
            DriftModel::Sinusoidal {
                amplitude,
                period,
                phase,
            } => {
                let omega = std::f64::consts::TAU / period.as_secs();
                amplitude * (omega * elapsed_secs + phase).sin()
            }
            DriftModel::UniformResample { bound, .. } => {
                if *bound == 0.0 {
                    0.0
                } else {
                    rng.random_range(-bound..=*bound)
                }
            }
            DriftModel::Scripted { segments, .. } => Self::scripted_at(segments, elapsed_secs),
        }
    }

    /// The scripted drift in force at `elapsed` seconds.
    fn scripted_at(segments: &[(f64, f64)], elapsed: f64) -> f64 {
        let mut drift = segments.first().map_or(0.0, |&(_, d)| d);
        for &(start, d) in segments {
            if elapsed >= start {
                drift = d;
            } else {
                break;
            }
        }
        drift
    }

    /// The drift value a fresh clock starts with (before the first
    /// quantum boundary).
    pub(crate) fn initial<R: Rng>(&self, rng: &mut R) -> f64 {
        match self {
            DriftModel::Constant(d) => *d,
            DriftModel::RandomWalk { .. } => 0.0,
            DriftModel::Sinusoidal {
                amplitude, phase, ..
            } => amplitude * phase.sin(),
            DriftModel::UniformResample { bound, .. } => {
                if *bound == 0.0 {
                    0.0
                } else {
                    rng.random_range(-bound..=*bound)
                }
            }
            DriftModel::Scripted { segments, .. } => Self::scripted_at(segments, 0.0),
        }
    }
}

/// A standard-normal sample via the Box–Muller transform (avoids a
/// `rand_distr` dependency).
fn normal_sample<R: Rng>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_has_no_quantum() {
        assert_eq!(DriftModel::Constant(1e-5).quantum(), None);
        assert_eq!(DriftModel::perfect().max_drift(), 0.0);
    }

    #[test]
    fn constant_always_samples_same_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DriftModel::Constant(-3e-4);
        assert_eq!(m.initial(&mut rng), -3e-4);
        assert_eq!(m.sample(123.0, 0.0, &mut rng), -3e-4);
        assert_eq!(m.max_drift(), 3e-4);
    }

    #[test]
    fn random_walk_stays_within_bound() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = DriftModel::RandomWalk {
            sigma: 1e-5,
            bound: 5e-5,
            quantum: Duration::from_secs(1.0),
        };
        let mut drift = m.initial(&mut rng);
        for i in 0..10_000 {
            drift = m.sample(f64::from(i), drift, &mut rng);
            assert!(drift.abs() <= 5e-5, "drift {drift} escaped the clamp");
        }
        assert_eq!(m.max_drift(), 5e-5);
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DriftModel::RandomWalk {
            sigma: 1e-5,
            bound: 1e-3,
            quantum: Duration::from_secs(1.0),
        };
        let d0 = m.initial(&mut rng);
        let d1 = m.sample(0.0, d0, &mut rng);
        assert_ne!(d0, d1);
    }

    #[test]
    fn sinusoidal_is_bounded_and_periodic() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DriftModel::Sinusoidal {
            amplitude: 2e-5,
            period: Duration::from_secs(86_400.0),
            phase: 0.0,
        };
        for i in 0..100 {
            let d = m.sample(f64::from(i) * 1000.0, 0.0, &mut rng);
            assert!(d.abs() <= 2e-5);
        }
        // Periodicity: same point one period later.
        let a = m.sample(1234.0, 0.0, &mut rng);
        let b = m.sample(1234.0 + 86_400.0, 0.0, &mut rng);
        assert!((a - b).abs() < 1e-12);
        // Quantum is a tenth of the period.
        assert_eq!(m.quantum(), Some(Duration::from_secs(8640.0)));
    }

    #[test]
    fn uniform_resample_within_bound_and_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DriftModel::UniformResample {
            bound: 1e-4,
            quantum: Duration::from_secs(10.0),
        };
        let mut values = Vec::new();
        for i in 0..100 {
            let d = m.sample(f64::from(i) * 10.0, 0.0, &mut rng);
            assert!(d.abs() <= 1e-4);
            values.push(d);
        }
        values.dedup();
        assert!(values.len() > 90, "uniform resampling should rarely repeat");
    }

    #[test]
    fn uniform_resample_zero_bound_is_perfect() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DriftModel::UniformResample {
            bound: 0.0,
            quantum: Duration::from_secs(1.0),
        };
        assert_eq!(m.initial(&mut rng), 0.0);
        assert_eq!(m.sample(5.0, 0.0, &mut rng), 0.0);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn scripted_follows_the_script() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DriftModel::Scripted {
            segments: vec![(0.0, 1e-4), (100.0, -2e-4), (200.0, 0.0)],
            quantum: Duration::from_secs(10.0),
        };
        assert_eq!(m.initial(&mut rng), 1e-4);
        assert_eq!(m.sample(50.0, 0.0, &mut rng), 1e-4);
        assert_eq!(m.sample(100.0, 0.0, &mut rng), -2e-4);
        assert_eq!(m.sample(150.0, 0.0, &mut rng), -2e-4);
        assert_eq!(m.sample(500.0, 0.0, &mut rng), 0.0);
        assert_eq!(m.max_drift(), 2e-4);
        assert_eq!(m.quantum(), Some(Duration::from_secs(10.0)));
    }

    #[test]
    fn scripted_clock_integrates_segments() {
        use crate::SimClock;
        use tempo_core::Timestamp;
        let mut c = SimClock::builder()
            .drift(DriftModel::Scripted {
                segments: vec![(0.0, 0.01), (100.0, -0.01)],
                quantum: Duration::from_secs(1.0),
            })
            .build();
        // 100 s at +1 %, then 100 s at −1 % → back to zero offset.
        let r = c.read(Timestamp::from_secs(200.0));
        assert!((r.as_secs() - 200.0).abs() < 1e-9, "reading {r}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let m = DriftModel::UniformResample {
            bound: 1e-4,
            quantum: Duration::from_secs(1.0),
        };
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for i in 0..50 {
            assert_eq!(
                m.sample(f64::from(i), 0.0, &mut a),
                m.sample(f64::from(i), 0.0, &mut b)
            );
        }
    }
}
