//! Clock fault injection.
//!
//! §1.1 of the paper: "A clock may fail in many ways, such as by
//! stopping, racing ahead, or refusing to change its value when reset."
//! A [`Fault`] arms one of those failure modes at a chosen real time;
//! the clock behaves perfectly normally before the trigger.

use tempo_core::{Duration, Timestamp};

/// The §1.1 failure catalogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The clock stops: its rate becomes zero.
    Stuck,
    /// The clock races: its drift becomes `drift` (e.g. `0.04` for the
    /// four-percent-fast clock of the §3 experiment), ignoring the
    /// configured drift model.
    Racing {
        /// The drift exhibited after the trigger (may far exceed any
        /// claimed bound).
        drift: f64,
    },
    /// The clock value jumps once by `offset` at the trigger instant and
    /// then resumes its normal drift model.
    Step {
        /// The (signed) jump applied to the clock value.
        offset: Duration,
    },
    /// The clock refuses to change its value when reset: `set` becomes a
    /// silent no-op.
    RefuseSet,
}

/// A fault armed to trigger at a given real time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Real time at which the failure begins.
    pub at: Timestamp,
    /// Which failure mode triggers.
    pub kind: FaultKind,
}

impl Fault {
    /// The clock stops at real time `at`.
    #[must_use]
    pub fn stuck_at(at: Timestamp) -> Self {
        Fault {
            at,
            kind: FaultKind::Stuck,
        }
    }

    /// The clock starts drifting at `drift` seconds/second at `at`.
    #[must_use]
    pub fn racing_from(at: Timestamp, drift: f64) -> Self {
        assert!(drift.is_finite(), "racing drift must be finite");
        Fault {
            at,
            kind: FaultKind::Racing { drift },
        }
    }

    /// The clock value jumps by `offset` at `at`.
    #[must_use]
    pub fn step_at(at: Timestamp, offset: Duration) -> Self {
        Fault {
            at,
            kind: FaultKind::Step { offset },
        }
    }

    /// The clock stops honouring `set` from `at` on.
    #[must_use]
    pub fn refuse_set_from(at: Timestamp) -> Self {
        Fault {
            at,
            kind: FaultKind::RefuseSet,
        }
    }

    /// Whether the fault is active at real time `now`.
    #[must_use]
    pub fn active_at(&self, now: Timestamp) -> bool {
        now >= self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Fault::stuck_at(ts(5.0)).kind, FaultKind::Stuck);
        assert_eq!(
            Fault::racing_from(ts(5.0), 0.04).kind,
            FaultKind::Racing { drift: 0.04 }
        );
        assert_eq!(
            Fault::step_at(ts(5.0), Duration::from_secs(-2.0)).kind,
            FaultKind::Step {
                offset: Duration::from_secs(-2.0)
            }
        );
        assert_eq!(Fault::refuse_set_from(ts(5.0)).kind, FaultKind::RefuseSet);
    }

    #[test]
    fn activation_boundary_is_inclusive() {
        let f = Fault::stuck_at(ts(10.0));
        assert!(!f.active_at(ts(9.999)));
        assert!(f.active_at(ts(10.0)));
        assert!(f.active_at(ts(11.0)));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn racing_rejects_nan() {
        let _ = Fault::racing_from(ts(0.0), f64::NAN);
    }
}
