//! A slewing clock discipline.
//!
//! The paper's servers *step* their clocks (rule MM-2/IM-2 sets `C_i`
//! outright), and §1.1 sketches how a client can recover monotonicity
//! afterwards. Production time daemons instead *discipline* the clock:
//! small corrections are applied by temporarily biasing the rate
//! (slewing), and only large ones step. [`ClockDiscipline`] implements
//! that policy on top of any target clock, so the protocol's reset
//! decisions can be realised without ever making time jump for local
//! readers.
//!
//! The discipline is a simple proportional servo: given a measured
//! offset (desired − current), it either steps (|offset| above the step
//! threshold) or slews at a bounded rate until the offset is absorbed.

use tempo_core::{Duration, Timestamp};

/// Policy knobs for [`ClockDiscipline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisciplineConfig {
    /// Corrections at or above this magnitude step the clock outright
    /// (the protocol's behaviour); smaller ones slew.
    pub step_threshold: Duration,
    /// Maximum slew rate in seconds of correction per second of clock
    /// time (e.g. `5e-4` = 500 ppm, `adjtime`'s classic limit).
    pub max_slew_rate: f64,
}

impl Default for DisciplineConfig {
    fn default() -> Self {
        DisciplineConfig {
            step_threshold: Duration::from_millis(128.0), // ntpd's default
            max_slew_rate: 5e-4,
        }
    }
}

impl DisciplineConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative or the slew rate is not in
    /// `(0, 1)`.
    pub fn validate(&self) {
        assert!(
            !self.step_threshold.is_negative(),
            "step threshold must be non-negative"
        );
        assert!(
            self.max_slew_rate.is_finite() && self.max_slew_rate > 0.0 && self.max_slew_rate < 1.0,
            "slew rate must be in (0, 1), got {}",
            self.max_slew_rate
        );
    }
}

/// What applying a correction did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Adjustment {
    /// The clock was stepped by the full offset.
    Stepped {
        /// The applied step.
        offset: Duration,
    },
    /// The offset was queued to be slewed out gradually.
    Slewing {
        /// The correction now pending (including any unfinished earlier
        /// slew).
        pending: Duration,
    },
}

/// The slewing discipline: tracks a pending correction and dribbles it
/// into the reading as raw clock time passes.
///
/// ```
/// use tempo_clocks::{ClockDiscipline, DisciplineConfig};
/// use tempo_core::{Duration, Timestamp};
///
/// let mut d = ClockDiscipline::new(DisciplineConfig {
///     step_threshold: Duration::from_secs(1.0),
///     max_slew_rate: 0.01,
/// });
/// // 50 ms behind: slew, don't step.
/// d.correct(Timestamp::from_secs(0.0), Duration::from_secs(0.05));
/// // After 2 raw seconds, 20 ms of the correction has been applied.
/// let reading = d.read(Timestamp::from_secs(2.0));
/// assert_eq!(reading, Timestamp::from_secs(2.02));
/// ```
#[derive(Debug, Clone)]
pub struct ClockDiscipline {
    config: DisciplineConfig,
    /// Accumulated correction already folded into readings.
    applied: Duration,
    /// Correction still to be slewed in.
    pending: Duration,
    /// Raw clock time of the last read/correct.
    last_raw: Option<Timestamp>,
}

impl ClockDiscipline {
    /// Creates a discipline with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: DisciplineConfig) -> Self {
        config.validate();
        ClockDiscipline {
            config,
            applied: Duration::ZERO,
            pending: Duration::ZERO,
            last_raw: None,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DisciplineConfig {
        &self.config
    }

    /// Correction not yet slewed in.
    #[must_use]
    pub fn pending(&self) -> Duration {
        self.pending
    }

    /// Advances the slew by the raw time elapsed since the last call.
    fn advance(&mut self, raw: Timestamp) {
        if let Some(last) = self.last_raw {
            assert!(raw >= last, "raw clock time must be non-decreasing");
            if self.pending != Duration::ZERO {
                let budget = (raw - last) * self.config.max_slew_rate;
                let chunk = if self.pending.is_negative() {
                    self.pending.max(-budget)
                } else {
                    self.pending.min(budget)
                };
                self.applied += chunk;
                self.pending -= chunk;
            }
        }
        self.last_raw = Some(raw);
    }

    /// The disciplined reading for raw clock reading `raw`.
    ///
    /// # Panics
    ///
    /// Panics if `raw` precedes a previously presented raw reading.
    pub fn read(&mut self, raw: Timestamp) -> Timestamp {
        self.advance(raw);
        raw + self.applied
    }

    /// Requests a correction: make the disciplined clock read
    /// `offset` later than it currently would.
    ///
    /// Returns how the correction is realised ([`Adjustment::Stepped`]
    /// immediately, or [`Adjustment::Slewing`] gradually). The decision
    /// uses the *total* outstanding correction, so repeated small slews
    /// that pile up past the threshold eventually step.
    pub fn correct(&mut self, raw: Timestamp, offset: Duration) -> Adjustment {
        self.advance(raw);
        let total = self.pending + offset;
        if total.abs() >= self.config.step_threshold {
            self.applied += total;
            self.pending = Duration::ZERO;
            Adjustment::Stepped { offset: total }
        } else {
            self.pending = total;
            Adjustment::Slewing { pending: total }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn discipline(threshold: f64, rate: f64) -> ClockDiscipline {
        ClockDiscipline::new(DisciplineConfig {
            step_threshold: dur(threshold),
            max_slew_rate: rate,
        })
    }

    #[test]
    fn passthrough_without_corrections() {
        let mut d = discipline(0.1, 1e-3);
        assert_eq!(d.read(ts(0.0)), ts(0.0));
        assert_eq!(d.read(ts(5.0)), ts(5.0));
        assert_eq!(d.pending(), Duration::ZERO);
    }

    #[test]
    fn large_offset_steps() {
        let mut d = discipline(0.1, 1e-3);
        let adj = d.correct(ts(0.0), dur(1.0));
        assert_eq!(adj, Adjustment::Stepped { offset: dur(1.0) });
        assert_eq!(d.read(ts(0.0)), ts(1.0));
        assert_eq!(d.read(ts(10.0)), ts(11.0));
    }

    #[test]
    fn small_offset_slews_gradually() {
        let mut d = discipline(1.0, 0.01);
        let adj = d.correct(ts(0.0), dur(0.05));
        assert_eq!(adj, Adjustment::Slewing { pending: dur(0.05) });
        // 2 s at 1 % → 0.02 s absorbed.
        assert_eq!(d.read(ts(2.0)), ts(2.02));
        // 5 s total → full 0.05 s absorbed (needs 5 s), then stops.
        assert_eq!(d.read(ts(5.0)), ts(5.05));
        assert_eq!(d.read(ts(100.0)), ts(100.05));
        assert_eq!(d.pending(), Duration::ZERO);
    }

    #[test]
    fn negative_offset_slews_without_backward_step() {
        let mut d = discipline(1.0, 0.01);
        let _ = d.read(ts(0.0));
        let _ = d.correct(ts(10.0), dur(-0.05));
        // The reading keeps moving forward while the correction drains:
        // raw +1 s, slew −0.01 s → net +0.99 s.
        let r1 = d.read(ts(11.0));
        assert_eq!(r1, ts(10.99));
        let r2 = d.read(ts(12.0));
        assert!(r2 > r1, "slewing must preserve monotonicity");
        assert_eq!(r2, ts(11.98));
        // Fully drained after 5 s.
        assert_eq!(d.read(ts(15.0)), ts(14.95));
        assert_eq!(d.read(ts(16.0)), ts(15.95));
    }

    #[test]
    fn monotone_under_any_small_corrections() {
        let mut d = discipline(10.0, 5e-4);
        let mut last = d.read(ts(0.0));
        let offsets = [0.05, -0.08, 0.002, -0.004, 0.09, -0.05];
        for (i, &off) in offsets.iter().enumerate() {
            let t = ts((i + 1) as f64 * 3.0);
            let _ = d.correct(t, dur(off));
            let r = d.read(t);
            assert!(r >= last, "reading went backwards: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn accumulated_slews_can_step() {
        let mut d = discipline(0.1, 1e-6);
        let _ = d.correct(ts(0.0), dur(0.06));
        // Still pending (slew rate is tiny); adding another 0.06 crosses
        // the 0.1 threshold → step of the combined total.
        match d.correct(ts(1.0), dur(0.06)) {
            Adjustment::Stepped { offset } => {
                assert!((offset.as_secs() - 0.119999).abs() < 1e-5);
            }
            other => panic!("expected step, got {other:?}"),
        }
        assert_eq!(d.pending(), Duration::ZERO);
    }

    #[test]
    fn threshold_boundary_steps() {
        let mut d = discipline(0.1, 1e-3);
        assert!(matches!(
            d.correct(ts(0.0), dur(0.1)),
            Adjustment::Stepped { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn raw_time_must_not_regress() {
        let mut d = discipline(0.1, 1e-3);
        let _ = d.read(ts(5.0));
        let _ = d.read(ts(4.0));
    }

    #[test]
    #[should_panic(expected = "slew rate must be in")]
    fn bad_config_rejected() {
        let _ = discipline(0.1, 0.0);
    }

    #[test]
    fn config_accessor_and_default() {
        let d = ClockDiscipline::new(DisciplineConfig::default());
        assert_eq!(d.config().max_slew_rate, 5e-4);
        assert_eq!(d.config().step_threshold, Duration::from_millis(128.0));
    }

    #[test]
    fn works_over_a_sim_clock() {
        use crate::{DriftModel, SimClock};
        // A fast clock corrected by small offsets each "round" — the
        // disciplined view stays monotone and close to true time.
        let mut raw = SimClock::builder()
            .drift(DriftModel::Constant(1e-4))
            .build();
        let mut d = discipline(1.0, 5e-4);
        let mut last = f64::MIN;
        for i in 1..=200 {
            let now = ts(f64::from(i));
            let reading = d.read(raw.read(now));
            assert!(reading.as_secs() >= last);
            last = reading.as_secs();
            if i % 10 == 0 {
                // Measure the disciplined clock against true time and
                // correct the residual.
                let offset = now - d.read(raw.read(now));
                let _ = d.correct(raw.read(now), offset);
            }
        }
        let final_err = (d.read(raw.read(ts(200.0))) - ts(200.0)).abs();
        assert!(
            final_err < dur(0.005),
            "disciplined clock should track true time, err {final_err}"
        );
    }
}
