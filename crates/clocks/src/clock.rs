//! The simulated clock itself.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tempo_core::{Duration, Timestamp};

use crate::drift::DriftModel;
use crate::fault::{Fault, FaultKind};

/// A simulated hardware clock: a piecewise-linear map from real
/// (simulated) time to clock time.
///
/// The clock is advanced lazily: every [`read`](SimClock::read) or
/// [`set`](SimClock::set) integrates the drift process up to the given
/// real time. Real time must be presented non-decreasingly (the
/// discrete-event simulator guarantees this).
///
/// Construct with [`SimClock::builder`].
///
/// ```
/// use tempo_clocks::{DriftModel, SimClock};
/// use tempo_core::{Duration, Timestamp};
///
/// let mut clock = SimClock::builder()
///     .initial_value(Timestamp::from_secs(100.0))
///     .drift(DriftModel::Constant(-1e-3)) // runs slow
///     .build();
/// let reading = clock.read(Timestamp::from_secs(1_000.0));
/// assert_eq!(reading, Timestamp::from_secs(1_099.0));
/// clock.set(Timestamp::from_secs(1_000.0), Timestamp::from_secs(1_000.0));
/// assert_eq!(clock.read(Timestamp::from_secs(1_000.0)), Timestamp::from_secs(1_000.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    last_real: Timestamp,
    clock: Timestamp,
    drift: DriftModel,
    current_drift: f64,
    next_quantum: Option<Timestamp>,
    fault: Option<Fault>,
    step_applied: bool,
    granularity: Option<Duration>,
    rng: StdRng,
}

impl SimClock {
    /// Starts building a clock.
    #[must_use]
    pub fn builder() -> SimClockBuilder {
        SimClockBuilder::new()
    }

    /// The drift the clock is exhibiting right now (after fault
    /// substitution), in seconds per second.
    #[must_use]
    pub fn current_drift(&self) -> f64 {
        self.effective_drift(self.last_real)
    }

    /// The configured drift model.
    #[must_use]
    pub fn drift_model(&self) -> &DriftModel {
        &self.drift
    }

    /// The real time of the most recent advance.
    #[must_use]
    pub fn last_real(&self) -> Timestamp {
        self.last_real
    }

    /// Reads the clock at real time `now`.
    ///
    /// If a reading granularity was configured the value is truncated to
    /// it (ticks), as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes a previously presented real time.
    pub fn read(&mut self, now: Timestamp) -> Timestamp {
        self.advance(now);
        match self.granularity {
            Some(g) => {
                let ticks = (self.clock.as_secs() / g.as_secs()).floor();
                Timestamp::from_secs(ticks * g.as_secs())
            }
            None => self.clock,
        }
    }

    /// Sets the clock value at real time `now`, returning `true` if the
    /// set took effect (`false` when a [`FaultKind::RefuseSet`] fault is
    /// active — the clock silently keeps its old value, which is exactly
    /// how the failing service of §1.1 misbehaves).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes a previously presented real time.
    pub fn set(&mut self, now: Timestamp, value: Timestamp) -> bool {
        self.advance(now);
        if let Some(f) = self.fault {
            if f.kind == FaultKind::RefuseSet && f.active_at(now) {
                return false;
            }
        }
        self.clock = value;
        true
    }

    /// The clock's true offset from real time, `C(t) − t`, *without*
    /// granularity truncation. Simulation-only observability: a real
    /// server could never compute this (there is no perfect clock in the
    /// system), which is why correctness is checkable here and not in
    /// the paper's live experiments.
    pub fn true_offset(&mut self, now: Timestamp) -> Duration {
        self.advance(now);
        self.clock - now
    }

    /// The drift in force over a segment starting at `at`.
    fn effective_drift(&self, at: Timestamp) -> f64 {
        if let Some(f) = self.fault {
            if f.active_at(at) {
                match f.kind {
                    FaultKind::Stuck => return -1.0, // rate 0
                    FaultKind::Racing { drift } => return drift,
                    FaultKind::Step { .. } | FaultKind::RefuseSet => {}
                }
            }
        }
        self.current_drift
    }

    /// Integrates the drift process from `last_real` up to `now`,
    /// splitting at drift-quantum boundaries and the fault trigger.
    fn advance(&mut self, now: Timestamp) {
        assert!(
            now >= self.last_real,
            "real time must be non-decreasing: {now} < {}",
            self.last_real
        );
        // Apply a step fault armed in the past (or exactly now) once.
        self.maybe_apply_step();
        while self.last_real < now {
            let mut seg_end = now;
            if let Some(q) = self.next_quantum {
                if q < seg_end {
                    seg_end = q;
                }
            }
            if let Some(f) = self.fault {
                if f.at > self.last_real && f.at < seg_end {
                    seg_end = f.at;
                }
            }
            // Integrate [last_real, seg_end) at the segment's rate.
            let rate = 1.0 + self.effective_drift(self.last_real);
            let span = seg_end - self.last_real;
            self.clock += span * rate;
            self.last_real = seg_end;
            self.maybe_apply_step();
            // Resample the drift at a quantum boundary.
            if self.next_quantum == Some(seg_end) {
                self.current_drift =
                    self.drift
                        .sample(seg_end.as_secs(), self.current_drift, &mut self.rng);
                let q = self
                    .drift
                    .quantum()
                    .expect("a quantum boundary implies a quantised model");
                self.next_quantum = Some(seg_end + q);
            }
        }
    }

    fn maybe_apply_step(&mut self) {
        if self.step_applied {
            return;
        }
        if let Some(Fault {
            at,
            kind: FaultKind::Step { offset },
        }) = self.fault
        {
            if at <= self.last_real {
                self.clock += offset;
                self.step_applied = true;
            }
        }
    }
}

/// Builder for [`SimClock`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct SimClockBuilder {
    start_real: Timestamp,
    initial_value: Option<Timestamp>,
    drift: DriftModel,
    fault: Option<Fault>,
    granularity: Option<Duration>,
    seed: u64,
}

impl SimClockBuilder {
    fn new() -> Self {
        SimClockBuilder {
            start_real: Timestamp::ZERO,
            initial_value: None,
            drift: DriftModel::perfect(),
            fault: None,
            granularity: None,
            seed: 0,
        }
    }

    /// Real time at which the clock comes into existence (default: 0).
    #[must_use]
    pub fn start_real(mut self, at: Timestamp) -> Self {
        self.start_real = at;
        self
    }

    /// Initial clock value (default: equal to the starting real time,
    /// i.e. an initially correct clock).
    #[must_use]
    pub fn initial_value(mut self, value: Timestamp) -> Self {
        self.initial_value = Some(value);
        self
    }

    /// The drift process (default: perfect).
    #[must_use]
    pub fn drift(mut self, drift: DriftModel) -> Self {
        self.drift = drift;
        self
    }

    /// Arms a fault.
    #[must_use]
    pub fn fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Reading granularity (tick size). Readings are truncated to a
    /// multiple of this.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is not positive.
    #[must_use]
    pub fn granularity(mut self, g: Duration) -> Self {
        assert!(g.as_secs() > 0.0, "granularity must be positive, got {g}");
        self.granularity = Some(g);
        self
    }

    /// RNG seed for stochastic drift models (default: 0). Two clocks
    /// built with the same configuration and seed behave identically.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the clock.
    #[must_use]
    pub fn build(self) -> SimClock {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let current_drift = self.drift.initial(&mut rng);
        let next_quantum = self.drift.quantum().map(|q| self.start_real + q);
        SimClock {
            last_real: self.start_real,
            clock: self.initial_value.unwrap_or(self.start_real),
            drift: self.drift,
            current_drift,
            next_quantum,
            fault: self.fault,
            step_applied: false,
            granularity: self.granularity,
            rng,
        }
    }
}

impl Default for SimClockBuilder {
    fn default() -> Self {
        SimClockBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn perfect_clock_tracks_real_time() {
        let mut c = SimClock::builder().build();
        assert_eq!(c.read(ts(0.0)), ts(0.0));
        assert_eq!(c.read(ts(100.0)), ts(100.0));
        assert_eq!(c.true_offset(ts(100.0)), Duration::ZERO);
    }

    #[test]
    fn constant_fast_clock() {
        let mut c = SimClock::builder()
            .drift(DriftModel::Constant(0.01))
            .build();
        assert_eq!(c.read(ts(100.0)), ts(101.0));
        assert_eq!(c.true_offset(ts(100.0)), Duration::from_secs(1.0));
        assert_eq!(c.current_drift(), 0.01);
    }

    #[test]
    fn constant_slow_clock() {
        let mut c = SimClock::builder()
            .drift(DriftModel::Constant(-0.02))
            .build();
        assert_eq!(c.read(ts(100.0)), ts(98.0));
    }

    #[test]
    fn initial_value_offsets_clock() {
        let mut c = SimClock::builder().initial_value(ts(50.0)).build();
        assert_eq!(c.read(ts(10.0)), ts(60.0));
    }

    #[test]
    fn start_real_defines_birth() {
        let mut c = SimClock::builder()
            .start_real(ts(1000.0))
            .drift(DriftModel::Constant(0.1))
            .build();
        // 10 real seconds after birth, 1 extra second of drift.
        assert_eq!(c.read(ts(1010.0)), ts(1011.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_cannot_flow_backwards() {
        let mut c = SimClock::builder().build();
        let _ = c.read(ts(10.0));
        let _ = c.read(ts(9.0));
    }

    #[test]
    fn set_changes_value_and_keeps_drifting() {
        let mut c = SimClock::builder()
            .drift(DriftModel::Constant(0.01))
            .build();
        assert!(c.set(ts(100.0), ts(200.0)));
        assert_eq!(c.read(ts(100.0)), ts(200.0));
        assert_eq!(c.read(ts(200.0)), ts(301.0));
    }

    #[test]
    fn set_backwards_is_allowed() {
        // The paper does not require local monotonicity (§1.1): clocks
        // may be freely set backward.
        let mut c = SimClock::builder().build();
        let _ = c.read(ts(100.0));
        assert!(c.set(ts(100.0), ts(50.0)));
        assert_eq!(c.read(ts(100.0)), ts(50.0));
    }

    #[test]
    fn incremental_reads_match_single_read() {
        let mut a = SimClock::builder()
            .drift(DriftModel::Constant(0.003))
            .build();
        let mut b = a.clone();
        for i in 1..=100 {
            let _ = a.read(ts(f64::from(i)));
        }
        // Segment-wise integration accumulates float round-off; the two
        // paths agree to well below a nanosecond over 100 s.
        let diff = (a.read(ts(100.0)) - b.read(ts(100.0))).abs();
        assert!(diff < Duration::from_secs(1e-10), "diff {diff}");
    }

    #[test]
    fn stuck_fault_freezes_clock() {
        let mut c = SimClock::builder().fault(Fault::stuck_at(ts(50.0))).build();
        assert_eq!(c.read(ts(50.0)), ts(50.0));
        assert_eq!(c.read(ts(100.0)), ts(50.0));
        assert_eq!(c.current_drift(), -1.0);
    }

    #[test]
    fn stuck_fault_mid_segment() {
        let mut c = SimClock::builder().fault(Fault::stuck_at(ts(50.0))).build();
        // One big jump across the trigger: integrates 50s at rate 1,
        // then 50s at rate 0.
        assert_eq!(c.read(ts(100.0)), ts(50.0));
    }

    #[test]
    fn racing_fault_overrides_drift() {
        let mut c = SimClock::builder()
            .drift(DriftModel::Constant(1e-5))
            .fault(Fault::racing_from(ts(100.0), 0.04))
            .build();
        let r = c.read(ts(200.0));
        // 100s at 1+1e-5, then 100s at 1.04.
        let expected = 100.0 * (1.0 + 1e-5) + 100.0 * 1.04;
        assert!((r.as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn step_fault_applies_once() {
        let mut c = SimClock::builder()
            .fault(Fault::step_at(ts(10.0), Duration::from_secs(-5.0)))
            .build();
        assert_eq!(c.read(ts(9.0)), ts(9.0));
        assert_eq!(c.read(ts(10.0)), ts(5.0));
        assert_eq!(c.read(ts(20.0)), ts(15.0));
    }

    #[test]
    fn step_fault_in_the_past_applies_at_first_advance() {
        let mut c = SimClock::builder()
            .fault(Fault::step_at(ts(0.0), Duration::from_secs(3.0)))
            .build();
        assert_eq!(c.read(ts(0.0)), ts(3.0));
        assert_eq!(c.read(ts(10.0)), ts(13.0));
    }

    #[test]
    fn refuse_set_fault_ignores_sets() {
        let mut c = SimClock::builder()
            .fault(Fault::refuse_set_from(ts(50.0)))
            .build();
        assert!(c.set(ts(10.0), ts(0.0))); // before trigger: honoured
        assert_eq!(c.read(ts(10.0)), ts(0.0));
        assert!(!c.set(ts(60.0), ts(1000.0))); // after trigger: refused
        assert_eq!(c.read(ts(60.0)), ts(50.0));
    }

    #[test]
    fn granularity_truncates_readings() {
        let mut c = SimClock::builder()
            .granularity(Duration::from_secs(1.0 / 60.0)) // Alto-style tick
            .build();
        let r = c.read(ts(0.1));
        assert!(r <= ts(0.1));
        assert!((ts(0.1) - r) < Duration::from_secs(1.0 / 60.0));
        // But true_offset is exact.
        assert_eq!(c.true_offset(ts(0.1)), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_rejected() {
        let _ = SimClock::builder().granularity(Duration::ZERO);
    }

    #[test]
    fn random_walk_clock_stays_within_envelope() {
        let mut c = SimClock::builder()
            .drift(DriftModel::RandomWalk {
                sigma: 1e-5,
                bound: 1e-4,
                quantum: Duration::from_secs(10.0),
            })
            .seed(11)
            .build();
        let mut prev = c.read(ts(0.0));
        for i in 1..=1000 {
            let now = ts(f64::from(i) * 10.0);
            let r = c.read(now);
            let elapsed = 10.0;
            let advance = (r - prev).as_secs();
            // Rate within [1-1e-4, 1+1e-4] per segment.
            assert!(
                (advance / elapsed - 1.0).abs() <= 1e-4 + 1e-12,
                "segment rate escaped the drift bound"
            );
            prev = r;
        }
    }

    #[test]
    fn same_seed_same_behaviour() {
        let build = || {
            SimClock::builder()
                .drift(DriftModel::UniformResample {
                    bound: 1e-4,
                    quantum: Duration::from_secs(5.0),
                })
                .seed(77)
                .build()
        };
        let mut a = build();
        let mut b = build();
        for i in 0..200 {
            let now = ts(f64::from(i) * 3.7);
            assert_eq!(a.read(now), b.read(now));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let build = |seed| {
            SimClock::builder()
                .drift(DriftModel::UniformResample {
                    bound: 1e-4,
                    quantum: Duration::from_secs(5.0),
                })
                .seed(seed)
                .build()
        };
        let mut a = build(1);
        let mut b = build(2);
        let ra = a.read(ts(1000.0));
        let rb = b.read(ts(1000.0));
        assert_ne!(ra, rb);
    }

    #[test]
    fn drift_model_accessor() {
        let c = SimClock::builder()
            .drift(DriftModel::Constant(5e-6))
            .build();
        assert_eq!(c.drift_model(), &DriftModel::Constant(5e-6));
        assert_eq!(c.last_real(), Timestamp::ZERO);
    }

    #[test]
    fn builder_default_equals_new() {
        let mut a = SimClockBuilder::default().build();
        let mut b = SimClock::builder().build();
        assert_eq!(a.read(ts(42.0)), b.read(ts(42.0)));
    }
}
