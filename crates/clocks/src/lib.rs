//! # tempo-clocks
//!
//! Simulated hardware clocks for the `tempo` time service — the substrate
//! standing in for the physical quartz clocks of the Xerox Research
//! Internet machines the paper experimented on.
//!
//! A [`SimClock`] is a piecewise-linear map from *real* (simulated) time
//! to *clock* time. Its instantaneous rate is `1 + drift(t)` where the
//! drift process is chosen from [`DriftModel`]:
//!
//! * [`DriftModel::Constant`] — a fixed bias (a clock that is steadily
//!   fast or slow),
//! * [`DriftModel::RandomWalk`] — a bounded random walk (ageing quartz),
//! * [`DriftModel::Sinusoidal`] — diurnal temperature-style variation,
//! * [`DriftModel::UniformResample`] — independently resampled drift per
//!   quantum, the i.i.d. model under which Theorem 8 of the paper is
//!   stated.
//!
//! Fault injection ([`Fault`]) reproduces the §1.1 failure catalogue: a
//! clock "may fail in many ways, such as by stopping, racing ahead, or
//! refusing to change its value when reset".
//!
//! [`MonotonicClock`] is the §1.1 client-side adapter that turns a
//! freely-resettable clock into a locally monotonic one by slewing
//! through backward steps.
//!
//! ```
//! use tempo_clocks::{DriftModel, SimClock};
//! use tempo_core::Timestamp;
//!
//! // A clock that runs one part in 10⁴ fast.
//! let mut clock = SimClock::builder()
//!     .drift(DriftModel::Constant(1e-4))
//!     .build();
//! let reading = clock.read(Timestamp::from_secs(10_000.0));
//! assert_eq!(reading, Timestamp::from_secs(10_001.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod discipline;
mod drift;
mod fault;
mod monotonic;

pub use clock::{SimClock, SimClockBuilder};
pub use discipline::{Adjustment, ClockDiscipline, DisciplineConfig};
pub use drift::DriftModel;
pub use fault::{Fault, FaultKind};
pub use monotonic::MonotonicClock;
