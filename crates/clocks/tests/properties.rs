//! Property tests for the clock substrate: every drift model honours
//! its envelope, the monotonic adapter never goes backward, and the
//! discipline stays monotone while draining corrections.

use proptest::prelude::*;

use tempo_clocks::{
    Adjustment, ClockDiscipline, DisciplineConfig, DriftModel, MonotonicClock, SimClock,
};
use tempo_core::{Duration, Timestamp};

fn drift_model() -> impl Strategy<Value = DriftModel> {
    prop_oneof![
        (-1e-3f64..1e-3).prop_map(DriftModel::Constant),
        (1e-6f64..1e-4, 1e-5f64..1e-3, 1.0f64..50.0).prop_map(|(sigma, bound, q)| {
            DriftModel::RandomWalk {
                sigma,
                bound,
                quantum: Duration::from_secs(q),
            }
        }),
        (
            1e-6f64..1e-3,
            10.0f64..1000.0,
            0.0f64..std::f64::consts::TAU
        )
            .prop_map(|(a, p, ph)| {
                DriftModel::Sinusoidal {
                    amplitude: a,
                    period: Duration::from_secs(p),
                    phase: ph,
                }
            }),
        (1e-6f64..1e-3, 1.0f64..50.0).prop_map(|(b, q)| DriftModel::UniformResample {
            bound: b,
            quantum: Duration::from_secs(q),
        }),
        (
            prop::collection::vec((0.0f64..1000.0, -1e-3f64..1e-3), 1..5),
            1.0f64..20.0
        )
            .prop_map(|(mut segments, q)| {
                segments.sort_by(|a, b| a.0.total_cmp(&b.0));
                DriftModel::Scripted {
                    segments,
                    quantum: Duration::from_secs(q),
                }
            }),
    ]
}

proptest! {
    /// Every model's realised segment rate stays within `1 ± max_drift`.
    #[test]
    fn clock_rate_within_envelope(
        model in drift_model(),
        seed in 0u64..1000,
        steps in prop::collection::vec(0.01f64..30.0, 1..40),
    ) {
        let bound = model.max_drift();
        let mut clock = SimClock::builder().drift(model).seed(seed).build();
        let mut t = 0.0;
        let mut prev = clock.read(Timestamp::ZERO);
        for step in steps {
            t += step;
            let now = Timestamp::from_secs(t);
            let r = clock.read(now);
            let rate = (r - prev).as_secs() / step;
            prop_assert!(
                (rate - 1.0).abs() <= bound + 1e-9,
                "rate {rate} outside 1±{bound}"
            );
            prev = r;
        }
    }

    /// Clock readings are monotone for any schedule (no fault armed).
    #[test]
    fn clock_readings_monotone(
        model in drift_model(),
        seed in 0u64..1000,
        steps in prop::collection::vec(0.0f64..20.0, 1..40),
    ) {
        let mut clock = SimClock::builder().drift(model).seed(seed).build();
        let mut t = 0.0;
        let mut prev = clock.read(Timestamp::ZERO);
        for step in steps {
            t += step;
            let r = clock.read(Timestamp::from_secs(t));
            prop_assert!(r >= prev, "clock went backwards: {r} < {prev}");
            prev = r;
        }
    }

    /// `set` always wins (absent a refuse-set fault): reading right
    /// after a set returns the set value.
    #[test]
    fn set_takes_effect(
        model in drift_model(),
        seed in 0u64..1000,
        at in 0.0f64..100.0,
        value in -1000.0f64..1000.0,
    ) {
        let mut clock = SimClock::builder().drift(model).seed(seed).build();
        let now = Timestamp::from_secs(at);
        prop_assert!(clock.set(now, Timestamp::from_secs(value)));
        prop_assert_eq!(clock.read(now), Timestamp::from_secs(value));
    }

    /// The monotonic adapter never steps backward for any raw sequence.
    #[test]
    fn monotonic_adapter_is_monotone(
        slew in 0.01f64..0.99,
        raws in prop::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let mut mono = MonotonicClock::new(slew);
        let mut last = f64::MIN;
        for raw in raws {
            let m = mono.observe(Timestamp::from_secs(raw)).as_secs();
            prop_assert!(m >= last, "monotonic clock regressed: {m} < {last}");
            last = m;
        }
    }

    /// The discipline's reading is monotone under sub-threshold
    /// corrections, and pending corrections drain to zero given time.
    #[test]
    fn discipline_monotone_and_drains(
        rate in 1e-4f64..0.5,
        corrections in prop::collection::vec(-0.05f64..0.05, 1..20),
    ) {
        let mut d = ClockDiscipline::new(DisciplineConfig {
            step_threshold: Duration::from_secs(10.0), // never step
            max_slew_rate: rate,
        });
        let mut t = 0.0;
        let mut last = d.read(Timestamp::ZERO).as_secs();
        for c in corrections {
            t += 1.0;
            match d.correct(Timestamp::from_secs(t), Duration::from_secs(c)) {
                Adjustment::Slewing { .. } => {}
                Adjustment::Stepped { .. } => prop_assert!(false, "threshold too low"),
            }
            let r = d.read(Timestamp::from_secs(t)).as_secs();
            prop_assert!(r >= last - 1e-12, "discipline regressed");
            last = r;
        }
        // Let the slew drain fully: pending ≤ 20·0.05 = 1 s, at `rate`
        // per second.
        t += 1.0 / rate + 100.0;
        let _ = d.read(Timestamp::from_secs(t));
        prop_assert!(d.pending().abs() < Duration::from_secs(1e-9));
    }

    /// Same seed ⇒ same behaviour for every stochastic model.
    #[test]
    fn clocks_are_reproducible(
        model in drift_model(),
        seed in 0u64..1000,
        at in 1.0f64..500.0,
    ) {
        let build = || SimClock::builder().drift(model.clone()).seed(seed).build();
        let mut a = build();
        let mut b = build();
        let now = Timestamp::from_secs(at);
        prop_assert_eq!(a.read(now), b.read(now));
    }
}
