//! The ClusterTime acceptance test on real sockets: five
//! `tempod --cluster` processes on localhost UDP, a client pulling a
//! strictly monotonic timestamp stream, a SIGKILL of the serving
//! primary mid-stream, and a durable rejoin.
//!
//! What `experiments cluster` proves under the simulator's failover
//! storms, this proves by deployment: the stream never regresses —
//! not across the election, not across the restart, not under
//! injected datagram loss — because no timestamp is released before a
//! quorum has the high-water mark on stable storage.

use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use tempo_transport::{TsOutcome, UdpClusterClient};

const CLUSTER: usize = 5;
/// Fast inner resync so replicas leave `booting` in under a second.
const PERIOD: &str = "0.2";
const WINDOW: &str = "0.1";
/// Per-node boot clock offsets (seconds). The claimed initial error
/// below must cover them — the paper's correctness precondition; a
/// primary whose interval excludes true time finds the quorum
/// intersection empty and (correctly) never acquires a lease.
const OFFSETS: [f64; CLUSTER] = [0.0, 0.05, -0.04, 0.03, -0.02];
const INITIAL_ERROR: &str = "0.1";

/// Kills every child on drop so a failing assertion never leaks
/// daemons into the test host.
struct Cluster {
    children: Vec<Option<Child>>,
    addrs: Vec<SocketAddr>,
    states: Vec<PathBuf>,
    epoch: f64,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
        for state in &self.states {
            let _ = std::fs::remove_file(state);
        }
    }
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").unwrap())
        .collect();
    sockets.iter().map(|s| s.local_addr().unwrap()).collect()
}

fn state_path(id: usize) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tempo-clustertime-{}-{id}.state",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn spawn_node(cluster: &Cluster, id: usize) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tempod"));
    cmd.arg("--cluster")
        .arg("--id")
        .arg(id.to_string())
        .arg("--listen")
        .arg(cluster.addrs[id].to_string())
        .arg("--offset")
        .arg(OFFSETS[id].to_string())
        .arg("--initial-error")
        .arg(INITIAL_ERROR)
        .arg("--epoch-unix")
        .arg(cluster.epoch.to_string())
        .arg("--period")
        .arg(PERIOD)
        .arg("--window")
        .arg(WINDOW)
        .arg("--seed")
        .arg(id.to_string())
        .arg("--state")
        .arg(&cluster.states[id])
        .arg("--duration")
        .arg("120")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for addr in &cluster.addrs {
        cmd.arg("--peer").arg(addr.to_string());
    }
    // One backup mistreats its outgoing datagrams: lost acks force the
    // primary through its retransmission/refusal machinery while the
    // three clean backups keep the release quorum reachable.
    if id == 3 {
        cmd.arg("--fault").arg("loss=0.2,dup=0.1");
    }
    cmd.spawn().expect("spawn tempod --cluster")
}

fn start_cluster() -> Cluster {
    let addrs = free_addrs(CLUSTER);
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs_f64();
    let mut cluster = Cluster {
        children: Vec::new(),
        addrs,
        states: (0..CLUSTER).map(state_path).collect(),
        epoch,
    };
    for id in 0..CLUSTER {
        let child = spawn_node(&cluster, id);
        cluster.children.push(Some(child));
    }
    cluster
}

/// Pulls `want` issued timestamps, asserting each strictly exceeds the
/// running floor. Refusals and timeouts are tolerated (booting,
/// elections in flight); never answering is not. Returns the new floor
/// and the view of the last issue.
fn issue_monotonic(
    client: &mut UdpClusterClient,
    want: usize,
    mut floor: u64,
    what: &str,
) -> (u64, u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = 0;
    let mut last_view = 0;
    while got < want {
        assert!(
            Instant::now() < deadline,
            "{what}: only {got} of {want} timestamps issued"
        );
        match client.request().expect("client socket") {
            TsOutcome::Issued { timestamp, view } => {
                assert!(
                    timestamp > floor,
                    "{what}: timestamp {timestamp} regressed past {floor} (view {view})"
                );
                floor = timestamp;
                last_view = view;
                got += 1;
            }
            outcome @ (TsOutcome::Refused { .. } | TsOutcome::TimedOut) => {
                // Captured output: visible only when the test fails,
                // where the refusal pattern is the diagnosis.
                eprintln!(
                    "{what}: {outcome:?} (believed primary {})",
                    client.believed_primary()
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    (floor, last_view)
}

#[test]
fn cluster_timestamps_stay_monotonic_across_primary_sigkill_and_rejoin() {
    let mut cluster = start_cluster();
    let mut client =
        UdpClusterClient::new(cluster.addrs.clone(), Duration::from_millis(400)).unwrap();

    // Phase 1 — a working stream: the view-0 primary issues strictly
    // increasing timestamps once its embedded server leaves `booting`.
    let (floor, view) = issue_monotonic(&mut client, 40, 0, "initial stream");
    let primary = (view as usize) % CLUSTER;

    // Phase 2 — SIGKILL the serving primary mid-stream. The lease must
    // expire, a backup must win the election, and the stream must
    // continue above the old floor: the high-water mark was on a
    // quorum's disks before any of those timestamps reached us.
    let mut victim = cluster.children[primary].take().unwrap();
    victim.kill().unwrap();
    victim.wait().unwrap();
    let (floor, new_view) = issue_monotonic(&mut client, 40, floor, "post-failover stream");
    assert!(
        new_view > view,
        "failover did not advance the view ({view} -> {new_view})"
    );
    assert_ne!(
        (new_view as usize) % CLUSTER,
        primary,
        "the killed primary cannot be serving"
    );

    // Phase 3 — durable rejoin: relaunch the corpse against the same
    // state file, then kill the *second* primary too. The rejoined
    // replica participates in the next election quorum, and the stream
    // still never regresses.
    assert!(
        cluster.states[primary].exists(),
        "cluster state file should survive the kill"
    );
    cluster.children[primary] = Some(spawn_node(&cluster, primary));
    std::thread::sleep(Duration::from_secs(2));
    let second = (new_view as usize) % CLUSTER;
    let mut victim = cluster.children[second].take().unwrap();
    victim.kill().unwrap();
    victim.wait().unwrap();
    let (_, final_view) = issue_monotonic(&mut client, 40, floor, "post-rejoin stream");
    assert!(
        final_view > new_view,
        "second failover did not advance the view ({new_view} -> {final_view})"
    );
    assert_ne!(
        (final_view as usize) % CLUSTER,
        second,
        "the second killed primary cannot be serving"
    );
}

#[test]
fn exactly_one_replica_issues_the_rest_redirect_or_refuse() {
    let cluster = start_cluster();
    let mut client =
        UdpClusterClient::new(cluster.addrs.clone(), Duration::from_millis(400)).unwrap();
    let (_, _) = issue_monotonic(&mut client, 10, 0, "warmup stream");
    // Probe each replica alone: a single-address client cannot follow
    // redirects, so only the lease holder can answer with a timestamp —
    // backups redirect (reported as a timeout here) or refuse. Retry
    // the scan a few times in case an in-flight reply is lost.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut repliers = 0;
        for &addr in &cluster.addrs {
            let mut one = UdpClusterClient::new(vec![addr], Duration::from_millis(400)).unwrap();
            if matches!(
                one.request().expect("client socket"),
                TsOutcome::Issued { .. }
            ) {
                repliers += 1;
            }
        }
        if repliers == 1 {
            return;
        }
        assert!(
            repliers <= 1,
            "{repliers} replicas issued timestamps at once — the lease gate failed"
        );
        assert!(
            Instant::now() < deadline,
            "no replica ever answered the per-node probe"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}
