//! The real-network acceptance test: five `tempod` processes on
//! localhost UDP, with socket-level fault injection, a SIGKILL +
//! durable restart, and a garbage-datagram blast.
//!
//! What the simulator proves by construction, this proves by
//! deployment: pairwise consistency (every two servers' intervals
//! share an instant) holds under real loss/duplication/delay, a
//! killed server rehydrates `(r_i, ε_i)` from its `--state` file and
//! rejoins with its error grown — not reset — and malformed datagrams
//! die in the codec without taking a server down.

use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use tempo_transport::{ClusterReading, ServerReading, UdpTimeClient};

const CLUSTER: usize = 5;
/// Fast rounds so the cluster converges in a couple of seconds.
const PERIOD: &str = "0.2";
const WINDOW: &str = "0.1";
/// Per-node boot clock offsets (seconds): node 0 is the good clock.
const OFFSETS: [f64; CLUSTER] = [0.0, 0.15, -0.12, 0.08, -0.05];
/// Node 0 claims a tight error; the rest boot loose and adopt.
const ERRORS: [f64; CLUSTER] = [0.02, 0.5, 0.5, 0.5, 0.5];

/// Kills every child on drop so a failing assertion never leaks
/// daemons into the test host.
struct Cluster {
    children: Vec<Option<Child>>,
    addrs: Vec<SocketAddr>,
    states: Vec<PathBuf>,
    epoch: f64,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
        for state in &self.states {
            let _ = std::fs::remove_file(state);
        }
    }
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    // Bind ephemeral ports, record them, release. A race with another
    // process is possible but vanishingly unlikely on loopback.
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").unwrap())
        .collect();
    sockets.iter().map(|s| s.local_addr().unwrap()).collect()
}

fn state_path(tag: &str, id: usize) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tempo-cluster-{tag}-{}-{id}.state",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The per-node fault plans: nodes 1 and 2 mistreat their outgoing
/// datagrams; everyone's receive path faces the consequences.
fn fault_for(id: usize) -> Option<&'static str> {
    match id {
        1 => Some("loss=0.25,dup=0.15"),
        2 => Some("delay=0.3:0.005:0.03,truncate=0.1,garbage=0.05"),
        _ => None,
    }
}

fn spawn_node(cluster: &Cluster, id: usize) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tempod"));
    cmd.arg("--id")
        .arg(id.to_string())
        .arg("--listen")
        .arg(cluster.addrs[id].to_string())
        .arg("--offset")
        .arg(OFFSETS[id].to_string())
        .arg("--epoch-unix")
        .arg(cluster.epoch.to_string())
        .arg("--initial-error")
        .arg(ERRORS[id].to_string())
        .arg("--period")
        .arg(PERIOD)
        .arg("--window")
        .arg(WINDOW)
        .arg("--seed")
        .arg(id.to_string())
        .arg("--state")
        .arg(&cluster.states[id])
        .arg("--duration")
        .arg("120")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for addr in &cluster.addrs {
        cmd.arg("--peer").arg(addr.to_string());
    }
    if let Some(fault) = fault_for(id) {
        cmd.arg("--fault").arg(fault);
    }
    cmd.spawn().expect("spawn tempod")
}

fn start_cluster(tag: &str) -> Cluster {
    let addrs = free_addrs(CLUSTER);
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs_f64();
    let mut cluster = Cluster {
        children: Vec::new(),
        addrs,
        states: (0..CLUSTER).map(|i| state_path(tag, i)).collect(),
        epoch,
    };
    for id in 0..CLUSTER {
        let child = spawn_node(&cluster, id);
        cluster.children.push(Some(child));
    }
    cluster
}

/// Queries until at least `want` servers answer, retrying through
/// injected loss; panics if the cluster never gets there.
fn query_at_least(client: &mut UdpTimeClient, want: usize, what: &str) -> ClusterReading {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reading = client.query().expect("client socket");
        if reading.readings.len() >= want {
            return reading;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: only {} of {want} servers answered",
            reading.readings.len()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Pairwise consistency: every two adjusted intervals, normalised to
/// a common local instant, must overlap. `slack` absorbs what the
/// readings cannot see — scheduling hiccups between the two receive
/// instants and in-flight clock slew.
fn assert_pairwise_consistent(readings: &[ServerReading], slack: f64, what: &str) {
    let reference = readings
        .iter()
        .map(|r| r.received_at)
        .max()
        .expect("nonempty readings");
    for (i, a) in readings.iter().enumerate() {
        for b in &readings[i + 1..] {
            let ea = a.adjusted_at(reference);
            let eb = b.adjusted_at(reference);
            let gap = (ea.time().as_secs() - eb.time().as_secs()).abs();
            let budget = ea.error().as_secs() + eb.error().as_secs() + slack;
            assert!(
                gap <= budget,
                "{what}: servers {} and {} inconsistent: gap {gap:.6}s > budget {budget:.6}s",
                a.from,
                b.from
            );
        }
    }
}

#[test]
fn five_node_cluster_survives_loss_sigkill_and_garbage() {
    let mut cluster = start_cluster("main");
    let mut client = UdpTimeClient::new(cluster.addrs.clone(), Duration::from_millis(500)).unwrap();

    // Phase 1 — convergence under injected loss/dup/delay/garbage.
    // Several rounds at 200 ms each, plus retry backoff headroom.
    std::thread::sleep(Duration::from_secs(3));
    let reading = query_at_least(&mut client, CLUSTER, "converged cluster");
    assert_pairwise_consistent(&reading.readings, 0.05, "converged cluster");
    // The loose-booted nodes must actually have synchronised: nobody
    // still claims their boot-time half-second error.
    for r in &reading.readings {
        assert!(
            r.estimate.error().as_secs() < 0.4,
            "server {} never tightened its error ({})",
            r.from,
            r.estimate.error()
        );
    }

    // Phase 2 — SIGKILL node 4, relaunch against the same state file.
    let mut victim = cluster.children[4].take().unwrap();
    victim.kill().unwrap();
    victim.wait().unwrap();
    assert!(
        cluster.states[4].exists(),
        "state file should survive the kill"
    );
    std::thread::sleep(Duration::from_millis(300));
    cluster.children[4] = Some(spawn_node(&cluster, 4));
    std::thread::sleep(Duration::from_secs(2));
    let reading = query_at_least(&mut client, CLUSTER, "restarted cluster");
    let revived = reading
        .readings
        .iter()
        .find(|r| r.from == cluster.addrs[4])
        .expect("restarted server answers");
    // Rehydration, not amnesia: the relaunched server's error derives
    // from the persisted post-sync epsilon (grown across downtime),
    // nowhere near the 0.5 s a fresh boot would claim.
    assert!(
        revived.estimate.error().as_secs() < 0.4,
        "restarted server error {} looks like a fresh boot, not rehydration",
        revived.estimate.error()
    );
    assert_pairwise_consistent(&reading.readings, 0.05, "restarted cluster");

    // Phase 3 — garbage blast: hundreds of malformed datagrams at
    // every server, from truncated headers to checksum-valid-length
    // noise. Nobody may crash; everybody must keep serving.
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut noise = 0x9e3779b97f4a7c15u64;
    for round in 0..60 {
        for &addr in &cluster.addrs {
            let mut frame = [0u8; 40];
            for byte in frame.iter_mut() {
                noise = noise.wrapping_mul(6364136223846793005).wrapping_add(round);
                *byte = (noise >> 33) as u8;
            }
            // Cycle shapes: pure noise, magic-prefixed noise, and
            // truncated-at-every-length frames.
            let shape = (round as usize) % 3;
            if shape == 1 {
                frame[0] = 0x7e;
                frame[1] = 0x30;
            }
            let len = if shape == 2 {
                (round as usize) % 38
            } else {
                40
            };
            attacker.send_to(&frame[..len.max(1)], addr).unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(700));
    for (id, slot) in cluster.children.iter_mut().enumerate() {
        let child = slot.as_mut().unwrap();
        assert!(
            child.try_wait().unwrap().is_none(),
            "server {id} died during the garbage blast"
        );
    }
    let reading = query_at_least(&mut client, CLUSTER, "post-garbage cluster");
    assert_pairwise_consistent(&reading.readings, 0.05, "post-garbage cluster");
}

#[test]
fn tempod_duration_exit_is_graceful_and_reports() {
    let addrs = free_addrs(2);
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs_f64();
    let mut telemetry = std::env::temp_dir();
    telemetry.push(format!("tempo-cluster-report-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&telemetry);
    let spawn = |id: usize, with_telemetry: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tempod"));
        cmd.arg("--id")
            .arg(id.to_string())
            .arg("--listen")
            .arg(addrs[id].to_string())
            .arg("--peer")
            .arg(addrs[0].to_string())
            .arg("--peer")
            .arg(addrs[1].to_string())
            .arg("--epoch-unix")
            .arg(epoch.to_string())
            .arg("--period")
            .arg(PERIOD)
            .arg("--window")
            .arg(WINDOW)
            .arg("--duration")
            .arg("1.5")
            .arg("--report")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if with_telemetry {
            cmd.arg("--telemetry-out").arg(&telemetry);
        }
        cmd.spawn().expect("spawn tempod")
    };
    let a = spawn(0, true);
    let b = spawn(1, false);
    let out_a = a.wait_with_output().unwrap();
    let out_b = b.wait_with_output().unwrap();
    assert!(out_a.status.success(), "node 0 exited {}", out_a.status);
    assert!(out_b.status.success(), "node 1 exited {}", out_b.status);
    let report = String::from_utf8(out_a.stdout).unwrap();
    assert!(
        report.contains("\"node\":0") && report.contains("\"active\":true"),
        "unexpected report: {report}"
    );
    let jsonl = std::fs::read_to_string(&telemetry).expect("telemetry file written");
    assert!(
        jsonl.lines().count() > 0 && jsonl.contains("\"type\":"),
        "telemetry stream looks empty or malformed: {jsonl:.200}"
    );
    let _ = std::fs::remove_file(&telemetry);
}
