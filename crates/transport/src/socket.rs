//! The socket seam: everything above this trait is testable without a
//! network, and everything below it (including fault injection) is
//! swappable without touching the protocol.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// An unreliable, unordered datagram endpoint.
///
/// Semantically this is exactly the network of the paper's §2: messages
/// may be lost, duplicated, delayed, and reordered, and anything larger
/// than a frame may arrive truncated or corrupted. Implementations:
/// [`std::net::UdpSocket`] (production), [`crate::FaultyTransport`]
/// (production socket plus *injected* §2 misbehaviour), and in-memory
/// mocks (tests).
///
/// Sends take `&self` — datagram sockets are naturally shareable, and
/// the fault decorator's flusher thread needs to send from a clone.
pub trait DatagramSocket: Send + Sync + std::fmt::Debug + 'static {
    /// Sends one datagram to `addr`. A short send is not an error at
    /// this layer; the receiver's codec rejects the truncated frame.
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize>;

    /// Receives one datagram, returning its length and origin.
    /// Implementations should honour a read timeout so callers can
    /// interleave timer processing (a blocked `recv_from` returns
    /// `WouldBlock`/`TimedOut`).
    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)>;

    /// The local address this endpoint is bound to.
    fn local_addr(&self) -> io::Result<SocketAddr>;

    /// Bounds how long the next `recv_from` may block. Mocks that
    /// never block can keep the no-op default; the real socket maps
    /// this to `set_read_timeout`.
    fn configure_read_timeout(&self, wait: std::time::Duration) {
        let _ = wait;
    }
}

impl DatagramSocket for UdpSocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        UdpSocket::send_to(self, buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        UdpSocket::recv_from(self, buf)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        UdpSocket::local_addr(self)
    }

    fn configure_read_timeout(&self, wait: std::time::Duration) {
        let _ = self.set_read_timeout(Some(wait));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_socket_satisfies_the_trait() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b_addr = DatagramSocket::local_addr(&b).unwrap();
        DatagramSocket::send_to(&a, b"ping", b_addr).unwrap();
        b.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        let (len, from) = DatagramSocket::recv_from(&b, &mut buf).unwrap();
        assert_eq!(&buf[..len], b"ping");
        assert_eq!(from, DatagramSocket::local_addr(&a).unwrap());
    }
}
