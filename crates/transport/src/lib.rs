//! # tempo-transport
//!
//! The real-network backend of the time service: the same
//! [`tempo_service::TimeServer`] state machine that runs inside the
//! deterministic simulator, driven here by actual UDP datagrams on
//! actual sockets.
//!
//! The paper's protocol is transport-agnostic by construction — rule
//! MM-1 only needs "ask a peer, time the round trip on your own clock"
//! — and the codebase mirrors that: the server is a sans-io actor whose
//! outputs are [`tempo_net::ActorAction`]s, and anything implementing
//! [`tempo_net::Transport`] may execute them. `tempo-net`'s `World` is
//! one such executor (simulated time, seeded delays); this crate's
//! [`UdpRuntime`] is the other (wall-clock time, real packet loss).
//!
//! * [`DatagramSocket`] — the thin socket seam: `std::net::UdpSocket`
//!   in production, a recording mock in tests.
//! * [`FaultyTransport`] — a socket decorator that injects loss,
//!   duplication, delay/reordering, truncation, and garbage *below*
//!   the codec, on real datagrams — the robustness hammer.
//! * [`UdpRuntime`] — owns a [`WireActor`] (a `TimeServer`, or a
//!   [`tempo_cluster::ClusterReplica`] for `tempod --cluster`), a
//!   socket, the peer table, and a wall-clock timer wheel; pumps
//!   receive/decode/dispatch.
//! * [`ServeFront`] — the lock-free read path: N threads on a shared
//!   serve socket answering time requests straight from the actor's
//!   seqlock-published snapshot, with batched replies and an optional
//!   admission tier.
//! * [`UdpTimeClient`] — a blocking client that queries a cluster and
//!   returns rtt-adjusted readings.
//! * [`FileStore`] — a durable [`tempo_service::StableStore`] (atomic
//!   tmp-write + fsync + rename), so a SIGKILLed server rehydrates
//!   `(r_i, ε_i)` on relaunch.
//! * [`signal`] — minimal SIGTERM/SIGINT latching for graceful
//!   shutdown without a signal-handling dependency.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench_serve;
mod client;
mod fault;
mod runtime;
mod serve;
pub mod signal;
mod socket;
mod store;

pub use client::{ClusterReading, ServerReading, TsOutcome, UdpClusterClient, UdpTimeClient};
pub use fault::{FaultPlan, FaultyTransport};
pub use runtime::{UdpRuntime, WireActor};
pub use serve::{ServeFront, ServeOptions, ServeStats};
pub use socket::DatagramSocket;
pub use store::FileStore;
