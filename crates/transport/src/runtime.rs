//! The UDP runtime: one [`TimeServer`] actor, one socket, wall-clock
//! timers — the real-network twin of `tempo_net::World`.
//!
//! The state machine is untouched: the runtime merely plays the
//! [`Transport`] role that the simulator plays in tests. Simulated
//! time becomes "seconds since process start" (a monotonic
//! [`Instant`] base), `Context::set_timer` becomes a wall-clock
//! [`EventQueue`] — the same timing wheel the simulator schedules
//! with, so FIFO tie-breaking among simultaneous timers matches the
//! simulator exactly — drained between socket read timeouts, and
//! `Context::send` becomes `encode` + `send_to`. Datagrams that fail
//! the wire codec are dropped *audibly* via
//! [`TimeServer::note_malformed_frame`] — the protocol never sees
//! them.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use rand::rngs::StdRng;

use tempo_cluster::{ClusterMsg, ClusterReplica};
use tempo_core::{Duration, Timestamp};
use tempo_net::{node_rng, Actor, Context, EventQueue, NodeId, Transport};
use tempo_service::wire::{decode, decode_cluster, encode, encode_cluster, DecodeError};
use tempo_service::{Message, TimeServer};

use crate::signal;
use crate::socket::DatagramSocket;

/// What the runtime needs beyond [`Actor`] to drive a protocol state
/// machine over a real datagram socket: a wire codec for its message
/// space, malformed-frame accounting, and a durable flush for the
/// graceful-stop path.
pub trait WireActor: Actor {
    /// Encodes one message into a datagram.
    fn encode_msg(msg: &Self::Msg) -> Vec<u8>;

    /// Decodes one datagram into a message.
    ///
    /// # Errors
    ///
    /// Returns the codec error for frames that fail validation; the
    /// runtime counts them via [`WireActor::note_malformed`] and never
    /// hands them to the protocol.
    fn decode_msg(bytes: &[u8]) -> Result<Self::Msg, DecodeError>;

    /// Notes a datagram that failed the codec.
    fn note_malformed(&mut self, now: Timestamp, len: usize, err: DecodeError);

    /// Flushes durable state on graceful shutdown.
    fn flush(&mut self);

    /// Whether this actor replies to clients *after* the callback that
    /// received their request has returned. If true, every minted
    /// transient id stays in the neighbour set of every callback so a
    /// deferred reply can route — the cluster primary answers a
    /// timestamp request only once a quorum acks the high-water mark.
    fn replies_later() -> bool {
        false
    }
}

impl WireActor for TimeServer {
    fn encode_msg(msg: &Message) -> Vec<u8> {
        encode(msg)
    }

    fn decode_msg(bytes: &[u8]) -> Result<Message, DecodeError> {
        decode(bytes)
    }

    fn note_malformed(&mut self, now: Timestamp, len: usize, err: DecodeError) {
        self.note_malformed_frame(now, len, err);
    }

    fn flush(&mut self) {
        self.flush_store();
    }
}

impl WireActor for ClusterReplica {
    fn encode_msg(msg: &ClusterMsg) -> Vec<u8> {
        encode_cluster(&msg.to_frame())
    }

    fn decode_msg(bytes: &[u8]) -> Result<ClusterMsg, DecodeError> {
        decode_cluster(bytes).map(ClusterMsg::from_frame)
    }

    fn note_malformed(&mut self, now: Timestamp, len: usize, err: DecodeError) {
        self.server_mut().note_malformed_frame(now, len, err);
    }

    fn flush(&mut self) {
        // The cluster record is persisted before every release; only
        // the embedded server's soft state waits for a flush.
        self.server_mut().flush_store();
    }

    fn replies_later() -> bool {
        true
    }
}

/// Drives a [`WireActor`] — a [`TimeServer`] by default, or a
/// [`ClusterReplica`] in `tempod --cluster` — over a real datagram
/// socket.
///
/// The runtime is single-threaded by design — the actor model already
/// serialises the protocol, so the loop is: fire due timers, block on
/// the socket for at most the gap to the next timer, dispatch one
/// datagram, repeat. Peers occupy [`NodeId`]s `0..cluster_size`;
/// client addresses get transient ids above that range so replies can
/// route back without the protocol knowing about "clients" at all.
pub struct UdpRuntime<S: DatagramSocket, A: WireActor = TimeServer> {
    server: A,
    socket: S,
    me: NodeId,
    /// Cluster peer addresses, indexed by `NodeId::index`. The entry
    /// at `me` is this process's own bind address (never dialed).
    peers: Vec<SocketAddr>,
    addr_to_node: HashMap<SocketAddr, NodeId>,
    /// Transient (client) address table: id = cluster_size + slot.
    transients: Vec<SocketAddr>,
    /// Pending wall-clock timers: due time → actor tag.
    timers: EventQueue<u64>,
    started_at: Instant,
    rng: StdRng,
    recv_buf: [u8; 512],
}

impl<S: DatagramSocket, A: WireActor> std::fmt::Debug for UdpRuntime<S, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpRuntime")
            .field("me", &self.me)
            .field("peers", &self.peers)
            .field("socket", &self.socket)
            .field("pending_timers", &self.timers.len())
            .finish_non_exhaustive()
    }
}

impl<S: DatagramSocket, A: WireActor> UdpRuntime<S, A> {
    /// Builds a runtime for node `me` of a cluster whose members live
    /// at `peers` (indexed by node id, including `me`'s own address).
    /// `seed` derives the per-node protocol RNG exactly as the
    /// simulator does, so jitter behaves identically.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside `peers`.
    pub fn new(server: A, socket: S, me: usize, peers: Vec<SocketAddr>, seed: u64) -> Self {
        assert!(
            me < peers.len(),
            "node {me} outside cluster of {}",
            peers.len()
        );
        let addr_to_node = peers
            .iter()
            .enumerate()
            .map(|(i, &addr)| (addr, NodeId::new(i)))
            .collect();
        UdpRuntime {
            server,
            socket,
            me: NodeId::new(me),
            peers,
            addr_to_node,
            transients: Vec::new(),
            timers: EventQueue::new(),
            started_at: Instant::now(),
            rng: node_rng(seed, NodeId::new(me)),
            recv_buf: [0u8; 512],
        }
    }

    /// The driven actor (counters, samples, lifecycle).
    #[must_use]
    pub fn server(&self) -> &A {
        &self.server
    }

    /// Mutable access to the driven actor.
    pub fn server_mut(&mut self) -> &mut A {
        &mut self.server
    }

    /// Seconds since the runtime was built, as the actor's
    /// wall-clock-backed "real time".
    #[must_use]
    pub fn elapsed(&self) -> Timestamp {
        Timestamp::from_secs(self.started_at.elapsed().as_secs_f64())
    }

    /// The instant this runtime's real-time axis calls zero. A
    /// [`crate::ServeFront`] measuring "now" against this instant is
    /// on the same axis as the snapshots the driven server publishes.
    #[must_use]
    pub fn clock_epoch(&self) -> Instant {
        self.started_at
    }

    fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        let i = node.index();
        if i < self.peers.len() {
            Some(self.peers[i])
        } else {
            self.transients.get(i - self.peers.len()).copied()
        }
    }

    /// The node id for a datagram's source address, minting a
    /// transient id for unknown (client) sources.
    fn node_for(&mut self, addr: SocketAddr) -> NodeId {
        if let Some(&node) = self.addr_to_node.get(&addr) {
            return node;
        }
        let node = NodeId::new(self.peers.len() + self.transients.len());
        self.transients.push(addr);
        self.addr_to_node.insert(addr, node);
        node
    }

    /// Neighbour set for a callback: every *other* cluster member,
    /// plus (for message callbacks) the sender — so replies to
    /// transient clients pass `Context::send`'s neighbour check while
    /// timer-driven polls only ever target real peers. Actors that
    /// reply out of band ([`WireActor::replies_later`]) keep every
    /// known transient in scope instead.
    fn neighbor_ids(&self, include: Option<NodeId>) -> Vec<NodeId> {
        let span = if A::replies_later() {
            self.peers.len() + self.transients.len()
        } else {
            self.peers.len()
        };
        let mut ids: Vec<NodeId> = (0..span)
            .map(NodeId::new)
            .filter(|&n| n != self.me)
            .collect();
        if let Some(extra) = include {
            if extra != self.me && !ids.contains(&extra) {
                ids.push(extra);
            }
        }
        ids
    }

    /// Runs the actor's `on_start` (join timers, first poll). Call
    /// once before [`UdpRuntime::poll`].
    pub fn start(&mut self) {
        let now = self.elapsed();
        let neighbors = self.neighbor_ids(None);
        let mut ctx = Context::external(now, self.me, &neighbors, &mut self.rng);
        self.server.on_start(&mut ctx);
        let actions = ctx.take_actions();
        self.apply(self.me, actions);
    }

    /// Fires every due timer, then waits for one datagram for at most
    /// `max_wait`, dispatching it if one arrives. Returns whether a
    /// datagram was processed. This is one turn of the event loop.
    pub fn poll(&mut self, max_wait: std::time::Duration) -> bool {
        self.fire_due_timers();
        let wait = match self.next_deadline() {
            Some(due) => {
                let gap = (due - self.elapsed()).as_secs().max(0.0);
                std::time::Duration::from_secs_f64(gap).min(max_wait)
            }
            None => max_wait,
        };
        let got = self.recv_one(wait);
        self.fire_due_timers();
        got
    }

    /// Runs the full serve loop: `on_start`, then poll until `until`
    /// returns true or a shutdown signal is latched, then a graceful
    /// stop — the stable store is flushed so the persisted
    /// `(r_i, ε_i)` survives the process (§5's recoverable departure).
    pub fn run(&mut self, mut until: impl FnMut(&Self) -> bool) {
        self.start();
        while !signal::shutdown_requested() && !until(self) {
            self.poll(std::time::Duration::from_millis(10));
        }
        self.shutdown();
    }

    /// The graceful-stop half of [`UdpRuntime::run`], public so
    /// embedders with their own loop can reuse it.
    pub fn shutdown(&mut self) {
        self.server.flush();
    }

    fn next_deadline(&mut self) -> Option<Timestamp> {
        self.timers.peek_time()
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = self.elapsed();
            let Some(due) = self.timers.peek_time() else {
                return;
            };
            if due > now {
                return;
            }
            let (_, tag) = self.timers.pop().expect("peeked timer exists");
            let neighbors = self.neighbor_ids(None);
            let mut ctx = Context::external(now, self.me, &neighbors, &mut self.rng);
            self.server.on_timer(tag, &mut ctx);
            let actions = ctx.take_actions();
            self.apply(self.me, actions);
        }
    }

    /// Receives and dispatches at most one datagram, waiting up to
    /// `wait`. Malformed frames are counted and dropped; the protocol
    /// only ever sees codec-clean messages.
    fn recv_one(&mut self, wait: std::time::Duration) -> bool {
        self.set_socket_timeout(wait);
        let (len, from_addr) = match self.socket.recv_from(&mut self.recv_buf) {
            Ok(hit) => hit,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return false;
            }
            Err(e) => {
                // Transient socket errors (e.g. ICMP-induced
                // ECONNREFUSED on Linux) must not kill the server.
                eprintln!("tempod: recv error (ignored): {e}");
                return false;
            }
        };
        let now = self.elapsed();
        match A::decode_msg(&self.recv_buf[..len]) {
            Ok(msg) => {
                let from = self.node_for(from_addr);
                let neighbors = self.neighbor_ids(Some(from));
                let mut ctx = Context::external(now, self.me, &neighbors, &mut self.rng);
                self.server.on_message(from, msg, &mut ctx);
                let actions = ctx.take_actions();
                self.apply(self.me, actions);
            }
            Err(e) => self.server.note_malformed(now, len, e),
        }
        true
    }

    fn set_socket_timeout(&self, wait: std::time::Duration) {
        // A zero timeout means "block forever" to the OS; clamp up.
        let wait = wait.max(std::time::Duration::from_millis(1));
        // The seam trait has no set_read_timeout (mocks don't need
        // one); the real socket path goes through this downcast-free
        // hook instead.
        self.socket.configure_read_timeout(wait);
    }
}

impl<S: DatagramSocket, A: WireActor> Transport<A::Msg> for UdpRuntime<S, A> {
    fn now(&self) -> Timestamp {
        self.elapsed()
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        debug_assert_eq!(from, self.me, "UdpRuntime hosts exactly one actor");
        let Some(addr) = self.addr_of(to) else {
            return;
        };
        let frame = A::encode_msg(&msg);
        if let Err(e) = self.socket.send_to(&frame, addr) {
            // Unreliable delivery is part of the model; a failed send
            // is a lost message, not a crash.
            eprintln!("tempod: send to {addr} failed (dropped): {e}");
        }
    }

    fn set_timer(&mut self, node: NodeId, delay: Duration, tag: u64) {
        debug_assert_eq!(node, self.me, "UdpRuntime hosts exactly one actor");
        let due = self.elapsed() + delay.max(Duration::ZERO);
        let _ = self.timers.push(due, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;

    use tempo_clocks::{DriftModel, SimClock};
    use tempo_core::DriftRate;
    use tempo_service::{ServerConfig, Strategy};

    use crate::store::FileStore;
    use tempo_service::StableStore;

    fn server(offset: f64, initial_error: f64) -> TimeServer {
        TimeServer::new(
            SimClock::builder()
                .initial_value(Timestamp::from_secs(offset))
                .drift(DriftModel::Constant(0.0))
                .build(),
            config(initial_error),
        )
    }

    fn config(initial_error: f64) -> ServerConfig {
        ServerConfig::new(Strategy::Mm, DriftRate::new(1e-4))
            .resync_period(Duration::from_secs(0.1))
            .collect_window(Duration::from_secs(0.05))
            .initial_error(Duration::from_secs(initial_error))
            .quorum(1)
    }

    fn loopback_pair() -> (UdpSocket, UdpSocket, Vec<std::net::SocketAddr>) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addrs = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
        (a, b, addrs)
    }

    #[test]
    fn two_runtimes_synchronise_over_loopback() {
        // `a` is the good clock (tight error); `b` starts 20 ms off
        // with a loose error, inside MM consistency, so rule MM-2
        // makes `b` adopt from `a` — the asymmetry MM needs, since it
        // only ever adopts a strictly better estimate.
        let (sock_a, sock_b, addrs) = loopback_pair();
        let mut a = UdpRuntime::new(server(0.00, 0.005), sock_a, 0, addrs.clone(), 1);
        let mut b = UdpRuntime::new(server(0.02, 0.05), sock_b, 1, addrs, 1);
        a.start();
        b.start();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            // Alternate the two event loops in one thread; short waits
            // keep either side from starving the other.
            a.poll(std::time::Duration::from_millis(2));
            b.poll(std::time::Duration::from_millis(2));
            if a.server().is_active()
                && b.server().is_active()
                && a.server().stats().replies > 0
                && b.server().stats().resets > 0
            {
                break;
            }
            assert!(Instant::now() < deadline, "pair never synchronised");
        }
        // Both servers' intervals must contain a common instant: with
        // zero drift and symmetric offsets, their estimates differ by
        // at most the two claimed errors (plus in-flight rtt, bounded
        // here by loopback latencies well under a millisecond).
        let now_a = a.elapsed();
        let est_a = a.server_mut().current_estimate(now_a);
        let now_b = b.elapsed();
        let est_b = b.server_mut().current_estimate(now_b);
        let skew =
            (est_a.time().as_secs() - now_a.as_secs()) - (est_b.time().as_secs() - now_b.as_secs());
        let budget = est_a.error().as_secs() + est_b.error().as_secs() + 0.005;
        assert!(
            skew.abs() <= budget,
            "skew {skew} exceeds error budget {budget}"
        );
    }

    #[test]
    fn run_exits_gracefully_on_shutdown_signal_and_flushes_the_store() {
        crate::signal::reset();
        let mut path = std::env::temp_dir();
        path.push(format!("tempo-runtime-shutdown-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store: Box<dyn StableStore> = Box::new(FileStore::open(&path).unwrap());
        let server = TimeServer::with_store(
            SimClock::builder().drift(DriftModel::Constant(0.0)).build(),
            config(0.01),
            store,
        );
        let (sock, _other, addrs) = loopback_pair();
        let mut rt = UdpRuntime::new(server, sock, 0, addrs, 1);
        // The constructor persisted the initial state; lose the file
        // so only the shutdown flush can bring it back.
        std::fs::remove_file(&path).unwrap();
        let stopper = std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            crate::signal::request_shutdown();
        });
        let started = Instant::now();
        rt.run(|_| false);
        stopper.join().unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "run did not stop on the signal"
        );
        assert!(
            FileStore::open(&path).unwrap().load().is_some(),
            "graceful shutdown did not flush the persisted state"
        );
        let _ = std::fs::remove_file(&path);
        crate::signal::reset();
    }

    #[test]
    fn malformed_datagrams_are_counted_not_crashing() {
        let (sock, attacker, addrs) = loopback_pair();
        let target = addrs[0];
        let mut rt = UdpRuntime::new(server(0.0, 0.01), sock, 0, addrs, 1);
        rt.start();
        // Garbage of several shapes: empty-ish, truncated header,
        // right magic wrong checksum, pure noise.
        attacker.send_to(&[0x7e], target).unwrap();
        attacker.send_to(&[0x7e, 0x30, 0x01], target).unwrap();
        attacker.send_to(&[0xff; 64], target).unwrap();
        attacker
            .send_to(&[0x7e, 0x30, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], target)
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while rt.server().stats().malformed_frames < 4 {
            rt.poll(std::time::Duration::from_millis(5));
            assert!(
                Instant::now() < deadline,
                "saw only {} malformed frames",
                rt.server().stats().malformed_frames
            );
        }
    }

    #[test]
    fn transient_client_addresses_get_stable_ids_and_replies() {
        let (sock, client, addrs) = loopback_pair();
        let target = addrs[0];
        let mut rt = UdpRuntime::new(server(0.0, 0.01), sock, 0, addrs, 1);
        rt.start();
        let frame = encode(&Message::TimeRequest {
            request_id: 99,
            attempt: 0,
        });
        client.send_to(&frame, target).unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(20)))
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let mut buf = [0u8; 512];
        loop {
            rt.poll(std::time::Duration::from_millis(5));
            if let Ok((len, _)) = client.recv_from(&mut buf) {
                let msg = decode(&buf[..len]).expect("well-formed reply");
                match msg {
                    Message::TimeReply { request_id, .. }
                    | Message::Uninitialized { request_id } => assert_eq!(request_id, 99),
                    Message::TimeRequest { .. } => panic!("server should not request from clients"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "no reply to the client request");
        }
    }
}
