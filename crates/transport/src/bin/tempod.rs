//! `tempod` — one time-service node on a real UDP socket.
//!
//! The daemon form of the paper's server: the same `TimeServer` state
//! machine the simulator runs, pointed at a bound socket and a list of
//! peer addresses. A five-node localhost cluster:
//!
//! ```text
//! for i in 0 1 2 3 4; do
//!   tempod --id $i --listen 127.0.0.1:900$i \
//!          --peer 127.0.0.1:9000 --peer 127.0.0.1:9001 \
//!          --peer 127.0.0.1:9002 --peer 127.0.0.1:9003 \
//!          --peer 127.0.0.1:9004 \
//!          --offset 0.0$i --state /tmp/tempo-$i.state &
//! done
//! ```
//!
//! SIGTERM/SIGINT trigger a graceful stop: the stable store is
//! flushed and the socket closed. SIGKILL does not — which is the
//! point of the store: relaunching with the same `--state` rehydrates
//! `(r_i, ε_i)` and re-derives the error grown across the downtime.

use std::cell::RefCell;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::ExitCode;
use std::rc::Rc;

use tempo_clocks::{DriftModel, SimClock};
use tempo_cluster::{ClusterConfig, ClusterReplica};
use tempo_core::{DriftRate, Duration, Timestamp};
use tempo_net::NodeId;
use tempo_service::{MemoryStore, RetryPolicy, ServerConfig, StableStore, Strategy, TimeServer};
use tempo_telemetry::json::event_line;
use tempo_telemetry::{Bus, EventKind, Observer, TelemetryEvent};
use tempo_transport::bench_serve::{self, BenchOptions};
use tempo_transport::{
    signal, FaultPlan, FaultyTransport, FileStore, ServeFront, ServeOptions, UdpRuntime,
};

const USAGE: &str = "\
tempod — one node of the tempo time service over UDP

USAGE:
    tempod --id N --listen ADDR --peer ADDR [--peer ADDR ...] [OPTIONS]

REQUIRED:
    --id N              this node's index into the --peer list
    --listen ADDR       UDP address to bind (must equal peer[N])
    --peer ADDR         cluster member address, repeated in node-id order

OPTIONS:
    --offset SECS       initial clock offset from true time   [0]
    --epoch-unix SECS   cluster epoch as a unix timestamp: the clock
                        boots at (wall time - epoch) + offset, so the
                        OS clock plays the hardware clock that keeps
                        running across a SIGKILL. Omit: boots at offset.
    --drift RATE        constant drift rate, e.g. 2e-5        [0]
    --drift-bound RATE  assumed drift bound delta             [1e-4]
    --initial-error S   initial error epsilon                 [0.01]
    --period SECS       resync period tau                     [1.0]
    --window SECS       reply-collection window               [0.25]
    --strategy NAME     mm | im | tolerant:F                  [mm]
    --quorum N          §5 bootstrap quorum                   [1]
    --seed N            protocol rng seed                     [0]
    --state PATH        durable state file (omit: in-memory)
    --fault SPEC        outgoing-datagram faults, e.g.
                        loss=0.2,dup=0.1,delay=0.3:0.01:0.05,truncate=0.05,garbage=0.05
    --fault-seed N      fault schedule seed                   [1]
    --telemetry-out P   write telemetry JSONL to P
    --duration SECS     exit (gracefully) after SECS; omit to run until signalled
    --report            print a final sample line to stdout on exit

CLUSTER MODE (lease-gated monotonic cluster timestamps):
    --cluster           run as one ClusterTime replica: the node above
                        becomes the embedded resync server, and the
                        process additionally speaks the lease/election/
                        timestamp protocol. --state then persists the
                        cluster record (view, high-water) — the durable
                        promise behind strict monotonicity — while the
                        embedded server rebuilds its estimate from peers.
    --lease SECS        lease duration                        [0.4]
    --renew SECS        primary renewal period                [0.1]
    --election SECS     election timeout on renewal silence   [0.3]
    --request-timeout S per-issue replication timeout         [0.5]
    --max-faulty F      fault budget f (sizes the quorum)     [0]

SERVING FRONT (the lock-free read path):
    --serve ADDR        also bind ADDR and answer time requests from the
                        seqlock snapshot, off the sync actor's socket
    --serve-threads N   reader threads on the serve socket        [1]
    --serve-admit R:B   admission token bucket: R req/s sustained,
                        bursts of B (omit: admit everything)

BENCHMARK MODE (no cluster flags needed):
    --bench-serve       run the serving-throughput benchmark on loopback
                        (sync actor vs 1/4/8-thread snapshot fronts),
                        write BENCH_8.json, and exit
    --bench-duration S  seconds measured per configuration        [2]
    --bench-clients N   client threads driving load               [8]
    --bench-window W    pipelined requests per client             [8]
    --bench-out PATH    where the JSON report goes    [BENCH_8.json]
";

#[derive(Debug)]
struct Options {
    id: usize,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    offset: f64,
    epoch_unix: Option<f64>,
    drift: f64,
    drift_bound: f64,
    initial_error: f64,
    period: f64,
    window: f64,
    strategy: Strategy,
    quorum: usize,
    seed: u64,
    state: Option<String>,
    fault: Option<FaultPlan>,
    fault_seed: u64,
    telemetry_out: Option<String>,
    duration: Option<f64>,
    report: bool,
    serve: Option<SocketAddr>,
    serve_threads: usize,
    serve_admit: Option<(f64, f64)>,
    cluster: bool,
    lease: f64,
    renew: f64,
    election: f64,
    request_timeout: f64,
    max_faulty: usize,
    bench_serve: bool,
    bench: BenchOptions,
    bench_out: String,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut id = None;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut opts = Options {
        id: 0,
        listen: "0.0.0.0:0".parse().unwrap(),
        peers: Vec::new(),
        offset: 0.0,
        epoch_unix: None,
        drift: 0.0,
        drift_bound: 1e-4,
        initial_error: 0.01,
        period: 1.0,
        window: 0.25,
        strategy: Strategy::Mm,
        quorum: 1,
        seed: 0,
        state: None,
        fault: None,
        fault_seed: 1,
        telemetry_out: None,
        duration: None,
        report: false,
        serve: None,
        serve_threads: 1,
        serve_admit: None,
        cluster: false,
        lease: 0.4,
        renew: 0.1,
        election: 0.3,
        request_timeout: 0.5,
        max_faulty: 0,
        bench_serve: false,
        bench: BenchOptions::default(),
        bench_out: "BENCH_8.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--report" {
            opts.report = true;
            continue;
        }
        if flag == "--bench-serve" {
            opts.bench_serve = true;
            continue;
        }
        if flag == "--cluster" {
            opts.cluster = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--id" => id = Some(parse(&value()?, "--id")?),
            "--listen" => listen = Some(parse_addr(&value()?)?),
            "--peer" => peers.push(parse_addr(&value()?)?),
            "--offset" => opts.offset = parse(&value()?, "--offset")?,
            "--epoch-unix" => opts.epoch_unix = Some(parse(&value()?, "--epoch-unix")?),
            "--drift" => opts.drift = parse(&value()?, "--drift")?,
            "--drift-bound" => opts.drift_bound = parse(&value()?, "--drift-bound")?,
            "--initial-error" => opts.initial_error = parse(&value()?, "--initial-error")?,
            "--period" => opts.period = parse(&value()?, "--period")?,
            "--window" => opts.window = parse(&value()?, "--window")?,
            "--strategy" => opts.strategy = parse_strategy(&value()?)?,
            "--quorum" => opts.quorum = parse(&value()?, "--quorum")?,
            "--seed" => opts.seed = parse(&value()?, "--seed")?,
            "--state" => opts.state = Some(value()?),
            "--fault" => opts.fault = Some(FaultPlan::parse(&value()?)?),
            "--fault-seed" => opts.fault_seed = parse(&value()?, "--fault-seed")?,
            "--telemetry-out" => opts.telemetry_out = Some(value()?),
            "--duration" => opts.duration = Some(parse(&value()?, "--duration")?),
            "--lease" => opts.lease = parse(&value()?, "--lease")?,
            "--renew" => opts.renew = parse(&value()?, "--renew")?,
            "--election" => opts.election = parse(&value()?, "--election")?,
            "--request-timeout" => {
                opts.request_timeout = parse(&value()?, "--request-timeout")?;
            }
            "--max-faulty" => opts.max_faulty = parse(&value()?, "--max-faulty")?,
            "--serve" => opts.serve = Some(parse_addr(&value()?)?),
            "--serve-threads" => opts.serve_threads = parse(&value()?, "--serve-threads")?,
            "--serve-admit" => opts.serve_admit = Some(parse_admit(&value()?)?),
            "--bench-duration" => opts.bench.duration = parse(&value()?, "--bench-duration")?,
            "--bench-clients" => opts.bench.clients = parse(&value()?, "--bench-clients")?,
            "--bench-window" => opts.bench.window = parse(&value()?, "--bench-window")?,
            "--bench-out" => opts.bench_out = value()?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.bench_serve {
        // Benchmark mode is self-contained on loopback: the cluster
        // flags are not required (and ignored when present).
        if opts.bench.duration <= 0.0 || opts.bench.clients == 0 {
            return Err("--bench-duration/--bench-clients must be positive".into());
        }
        if !(1..=255).contains(&opts.bench.window) {
            return Err("--bench-window must be 1..=255 (one batch frame)".into());
        }
        return Ok(opts);
    }
    if opts.serve_threads == 0 {
        return Err("--serve-threads must be at least 1".into());
    }
    opts.id = id.ok_or("--id is required")?;
    opts.listen = listen.ok_or("--listen is required")?;
    opts.peers = peers;
    if opts.peers.len() < 2 {
        return Err("need at least two --peer addresses".into());
    }
    if opts.id >= opts.peers.len() {
        return Err(format!(
            "--id {} outside the {}-node --peer list",
            opts.id,
            opts.peers.len()
        ));
    }
    if opts.peers[opts.id] != opts.listen {
        return Err(format!(
            "--listen {} does not match peer[{}] = {}",
            opts.listen, opts.id, opts.peers[opts.id]
        ));
    }
    if opts.cluster {
        let n = opts.peers.len();
        let quorum = (n + opts.max_faulty) / 2 + 1;
        if n - opts.max_faulty < quorum {
            return Err(format!(
                "--max-faulty {}: quorum {quorum} unreachable with {n} replicas",
                opts.max_faulty
            ));
        }
        for (flag, value) in [
            ("--lease", opts.lease),
            ("--renew", opts.renew),
            ("--election", opts.election),
            ("--request-timeout", opts.request_timeout),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{flag} must be positive, got {value}"));
            }
        }
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse `{value}`"))
}

fn parse_addr(value: &str) -> Result<SocketAddr, String> {
    value
        .parse()
        .map_err(|_| format!("bad socket address `{value}`"))
}

fn parse_admit(value: &str) -> Result<(f64, f64), String> {
    let (rate, burst) = value
        .split_once(':')
        .ok_or_else(|| format!("--serve-admit wants RATE:BURST, got `{value}`"))?;
    let rate: f64 = parse(rate, "--serve-admit rate")?;
    let burst: f64 = parse(burst, "--serve-admit burst")?;
    if !rate.is_finite() || rate <= 0.0 || !burst.is_finite() || burst < 1.0 {
        return Err("--serve-admit needs rate > 0 and burst >= 1".into());
    }
    Ok((rate, burst))
}

fn parse_strategy(value: &str) -> Result<Strategy, String> {
    match value {
        "mm" => Ok(Strategy::Mm),
        "im" => Ok(Strategy::Im),
        other => match other.strip_prefix("tolerant:") {
            Some(f) => Ok(Strategy::MarzulloTolerant {
                max_faulty: parse(f, "--strategy tolerant:F")?,
            }),
            None => Err(format!("unknown strategy `{other}` (mm, im, tolerant:F)")),
        },
    }
}

/// Telemetry sink: every event, one JSON line, flushed on drop.
struct JsonlSink {
    out: BufWriter<std::fs::File>,
}

impl Observer for JsonlSink {
    fn enabled(&self, _kind: EventKind) -> bool {
        true
    }

    fn observe(&mut self, event: &TelemetryEvent) {
        let _ = writeln!(self.out, "{}", event_line(event));
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// The simulated clock's boot value. With an epoch, the OS wall clock
/// plays the hardware clock: it keeps running while the process is
/// dead, so a relaunch against the same `--state` rehydrates into a
/// *continued* clock and the MM-1 error grows across the downtime
/// instead of resetting.
fn boot_value(opts: &Options) -> Result<f64, String> {
    Ok(match opts.epoch_unix {
        Some(epoch) => {
            let wall = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_err(|e| e.to_string())?
                .as_secs_f64();
            wall - epoch + opts.offset
        }
        None => opts.offset,
    })
}

/// The embedded resync server, configured from the base flags.
fn build_server(opts: &Options, store: Box<dyn StableStore>) -> Result<TimeServer, String> {
    let clock = SimClock::builder()
        .initial_value(Timestamp::from_secs(boot_value(opts)?))
        .drift(DriftModel::Constant(opts.drift))
        .seed(opts.seed)
        .build();
    let config = ServerConfig::new(opts.strategy, DriftRate::new(opts.drift_bound))
        .resync_period(Duration::from_secs(opts.period))
        .collect_window(Duration::from_secs(opts.window))
        .initial_error(Duration::from_secs(opts.initial_error))
        .retry(RetryPolicy::backoff_defaults())
        .quorum(opts.quorum);
    Ok(TimeServer::with_store(clock, config, store))
}

fn telemetry_bus(opts: &Options) -> Result<Option<Bus>, String> {
    let Some(path) = &opts.telemetry_out else {
        return Ok(None);
    };
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let bus = Bus::new();
    bus.subscribe(Rc::new(RefCell::new(JsonlSink {
        out: BufWriter::new(file),
    })));
    Ok(Some(bus))
}

fn run(opts: Options) -> Result<(), String> {
    if opts.bench_serve {
        return run_bench(&opts);
    }
    if opts.cluster {
        return run_cluster(&opts);
    }
    let store: Box<dyn StableStore> = match &opts.state {
        Some(path) => Box::new(FileStore::open(path).map_err(|e| e.to_string())?),
        None => Box::new(MemoryStore::new()),
    };
    let mut server = build_server(&opts, store)?;
    if let Some(bus) = telemetry_bus(&opts)? {
        server.attach_bus(bus);
    }
    let socket = UdpSocket::bind(opts.listen).map_err(|e| e.to_string())?;
    signal::install();
    eprintln!(
        "tempod: node {} serving on {} ({} peers{})",
        opts.id,
        opts.listen,
        opts.peers.len() - 1,
        match &opts.fault {
            Some(plan) => format!(", faults {plan:?}"),
            None => String::new(),
        }
    );
    let deadline = opts.duration.map(Duration::from_secs);
    // Faulty and clean paths instantiate the runtime at different
    // socket types; each arm runs its own monomorphisation.
    match opts.fault.filter(FaultPlan::is_active) {
        Some(plan) => {
            let faulty = FaultyTransport::new(socket, plan, opts.fault_seed);
            let mut rt = UdpRuntime::new(server, faulty, opts.id, opts.peers.clone(), opts.seed);
            let front = spawn_front(&opts, rt.server().snapshot_reader(), rt.clock_epoch())?;
            rt.run(|rt| deadline.is_some_and(|d| rt.elapsed() >= Timestamp::ZERO + d));
            stop_front(front);
            report(&opts, &mut rt);
        }
        None => {
            let mut rt = UdpRuntime::new(server, socket, opts.id, opts.peers.clone(), opts.seed);
            let front = spawn_front(&opts, rt.server().snapshot_reader(), rt.clock_epoch())?;
            rt.run(|rt| deadline.is_some_and(|d| rt.elapsed() >= Timestamp::ZERO + d));
            stop_front(front);
            report(&opts, &mut rt);
        }
    }
    Ok(())
}

/// `--cluster`: run one ClusterTime replica over the same socket. The
/// embedded resync server always uses an in-memory store here — the
/// durable promise of cluster mode is the *cluster record* (view,
/// high-water mark), which `--state` persists via the replica, and two
/// `FileStore` handles on one path would clobber each other. The
/// embedded estimate rebuilds from peers after a restart; until it
/// does, the replica refuses timestamp requests with `booting`.
fn run_cluster(opts: &Options) -> Result<(), String> {
    let server = build_server(opts, Box::new(MemoryStore::new()))?;
    let cluster_store: Box<dyn StableStore> = match &opts.state {
        Some(path) => Box::new(FileStore::open(path).map_err(|e| e.to_string())?),
        None => Box::new(MemoryStore::new()),
    };
    let replicas: Vec<NodeId> = (0..opts.peers.len()).map(NodeId::new).collect();
    let config = ClusterConfig::new(replicas, opts.id)
        .max_faulty(opts.max_faulty)
        .lease_duration(Duration::from_secs(opts.lease))
        .renew_period(Duration::from_secs(opts.renew))
        .election_timeout(Duration::from_secs(opts.election))
        .request_timeout(Duration::from_secs(opts.request_timeout));
    let mut replica = ClusterReplica::new(server, config, cluster_store);
    if let Some(bus) = telemetry_bus(opts)? {
        replica.attach_bus(bus);
    }
    let socket = UdpSocket::bind(opts.listen).map_err(|e| e.to_string())?;
    signal::install();
    eprintln!(
        "tempod: cluster replica {} on {} ({} peers, f={}{})",
        opts.id,
        opts.listen,
        opts.peers.len() - 1,
        opts.max_faulty,
        match &opts.fault {
            Some(plan) => format!(", faults {plan:?}"),
            None => String::new(),
        }
    );
    let deadline = opts.duration.map(Duration::from_secs);
    match opts.fault.filter(FaultPlan::is_active) {
        Some(plan) => {
            let faulty = FaultyTransport::new(socket, plan, opts.fault_seed);
            let mut rt: UdpRuntime<_, ClusterReplica> =
                UdpRuntime::new(replica, faulty, opts.id, opts.peers.clone(), opts.seed);
            let front = spawn_front(
                opts,
                rt.server().server().snapshot_reader(),
                rt.clock_epoch(),
            )?;
            rt.run(|rt| deadline.is_some_and(|d| rt.elapsed() >= Timestamp::ZERO + d));
            stop_front(front);
            cluster_report(opts, &mut rt);
        }
        None => {
            let mut rt: UdpRuntime<_, ClusterReplica> =
                UdpRuntime::new(replica, socket, opts.id, opts.peers.clone(), opts.seed);
            let front = spawn_front(
                opts,
                rt.server().server().snapshot_reader(),
                rt.clock_epoch(),
            )?;
            rt.run(|rt| deadline.is_some_and(|d| rt.elapsed() >= Timestamp::ZERO + d));
            stop_front(front);
            cluster_report(opts, &mut rt);
        }
    }
    Ok(())
}

/// Bind and start the lock-free serving front when `--serve` was given.
fn spawn_front(
    opts: &Options,
    reader: tempo_core::SnapshotReader,
    epoch: std::time::Instant,
) -> Result<Option<ServeFront>, String> {
    let Some(addr) = opts.serve else {
        return Ok(None);
    };
    let socket = UdpSocket::bind(addr).map_err(|e| e.to_string())?;
    let front = ServeFront::spawn(
        socket,
        reader,
        epoch,
        &ServeOptions {
            threads: opts.serve_threads,
            admission: opts.serve_admit,
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "tempod: serving front on {} ({} thread{})",
        front.local_addr(),
        opts.serve_threads,
        if opts.serve_threads == 1 { "" } else { "s" },
    );
    Ok(Some(front))
}

fn stop_front(front: Option<ServeFront>) {
    if let Some(front) = front {
        let stats = front.stop();
        eprintln!(
            "tempod: front served {} (refused {}, rejected {}, malformed {}, batches {})",
            stats.served, stats.refused, stats.rejected, stats.malformed, stats.batches,
        );
    }
}

/// `--bench-serve`: measure the sync actor against 1/4/8-thread
/// snapshot fronts on loopback and write the JSON report.
fn run_bench(opts: &Options) -> Result<(), String> {
    eprintln!(
        "tempod: serving-throughput benchmark ({}s per config, {} clients, window {})",
        opts.bench.duration, opts.bench.clients, opts.bench.window,
    );
    let reports = bench_serve::run(&opts.bench);
    let baseline = reports
        .iter()
        .find(|r| r.threads == 0)
        .map(|r| r.requests_per_sec);
    for r in &reports {
        println!(
            "{:<18} {:>10.0} req/s   p50 {:>7.1}us   p99 {:>8.1}us   ({} replies, {} lost)",
            r.label, r.requests_per_sec, r.p50_us, r.p99_us, r.replies, r.lost,
        );
    }
    if let (Some(base), Some(four)) = (baseline, reports.iter().find(|r| r.threads == 4)) {
        println!(
            "speedup (4-thread front vs sync actor): {:.2}x",
            four.requests_per_sec / base,
        );
    }
    let json = bench_serve::to_json(&opts.bench, &reports);
    std::fs::write(&opts.bench_out, &json).map_err(|e| e.to_string())?;
    eprintln!("tempod: wrote {}", opts.bench_out);
    Ok(())
}

fn cluster_report<S: tempo_transport::DatagramSocket>(
    opts: &Options,
    rt: &mut UdpRuntime<S, ClusterReplica>,
) {
    if !opts.report {
        return;
    }
    let replica = rt.server();
    let stats = replica.stats();
    println!(
        "{{\"node\":{},\"view\":{},\"primary\":{},\"high_water\":{},\"issued\":{},\"refused\":{},\"redirects\":{},\"elections_won\":{},\"rehydrations\":{}}}",
        opts.id,
        replica.view(),
        replica.is_serving_primary(),
        replica.high_water(),
        stats.issued,
        stats.refused(),
        stats.redirects,
        stats.elections_won,
        stats.rehydrations,
    );
}

fn report<S: tempo_transport::DatagramSocket>(opts: &Options, rt: &mut UdpRuntime<S>) {
    if !opts.report {
        return;
    }
    let now = rt.elapsed();
    let server = rt.server_mut();
    let stats = server.stats();
    let active = server.is_active();
    let estimate = server.current_estimate(now);
    println!(
        "{{\"node\":{},\"active\":{},\"time\":{},\"error\":{},\"rounds\":{},\"resets\":{},\"malformed\":{}}}",
        opts.id,
        active,
        estimate.time().as_secs(),
        estimate.error().as_secs(),
        stats.rounds,
        stats.resets,
        stats.malformed_frames,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tempod: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if e.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("tempod: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        }
    }
}
