//! `tempod` — one time-service node on a real UDP socket.
//!
//! The daemon form of the paper's server: the same `TimeServer` state
//! machine the simulator runs, pointed at a bound socket and a list of
//! peer addresses. A five-node localhost cluster:
//!
//! ```text
//! for i in 0 1 2 3 4; do
//!   tempod --id $i --listen 127.0.0.1:900$i \
//!          --peer 127.0.0.1:9000 --peer 127.0.0.1:9001 \
//!          --peer 127.0.0.1:9002 --peer 127.0.0.1:9003 \
//!          --peer 127.0.0.1:9004 \
//!          --offset 0.0$i --state /tmp/tempo-$i.state &
//! done
//! ```
//!
//! SIGTERM/SIGINT trigger a graceful stop: the stable store is
//! flushed and the socket closed. SIGKILL does not — which is the
//! point of the store: relaunching with the same `--state` rehydrates
//! `(r_i, ε_i)` and re-derives the error grown across the downtime.

use std::cell::RefCell;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::ExitCode;
use std::rc::Rc;

use tempo_clocks::{DriftModel, SimClock};
use tempo_core::{DriftRate, Duration, Timestamp};
use tempo_service::{MemoryStore, RetryPolicy, ServerConfig, StableStore, Strategy, TimeServer};
use tempo_telemetry::json::event_line;
use tempo_telemetry::{Bus, EventKind, Observer, TelemetryEvent};
use tempo_transport::{signal, FaultPlan, FaultyTransport, FileStore, UdpRuntime};

const USAGE: &str = "\
tempod — one node of the tempo time service over UDP

USAGE:
    tempod --id N --listen ADDR --peer ADDR [--peer ADDR ...] [OPTIONS]

REQUIRED:
    --id N              this node's index into the --peer list
    --listen ADDR       UDP address to bind (must equal peer[N])
    --peer ADDR         cluster member address, repeated in node-id order

OPTIONS:
    --offset SECS       initial clock offset from true time   [0]
    --epoch-unix SECS   cluster epoch as a unix timestamp: the clock
                        boots at (wall time - epoch) + offset, so the
                        OS clock plays the hardware clock that keeps
                        running across a SIGKILL. Omit: boots at offset.
    --drift RATE        constant drift rate, e.g. 2e-5        [0]
    --drift-bound RATE  assumed drift bound delta             [1e-4]
    --initial-error S   initial error epsilon                 [0.01]
    --period SECS       resync period tau                     [1.0]
    --window SECS       reply-collection window               [0.25]
    --strategy NAME     mm | im | tolerant:F                  [mm]
    --quorum N          §5 bootstrap quorum                   [1]
    --seed N            protocol rng seed                     [0]
    --state PATH        durable state file (omit: in-memory)
    --fault SPEC        outgoing-datagram faults, e.g.
                        loss=0.2,dup=0.1,delay=0.3:0.01:0.05,truncate=0.05,garbage=0.05
    --fault-seed N      fault schedule seed                   [1]
    --telemetry-out P   write telemetry JSONL to P
    --duration SECS     exit (gracefully) after SECS; omit to run until signalled
    --report            print a final sample line to stdout on exit
";

#[derive(Debug)]
struct Options {
    id: usize,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    offset: f64,
    epoch_unix: Option<f64>,
    drift: f64,
    drift_bound: f64,
    initial_error: f64,
    period: f64,
    window: f64,
    strategy: Strategy,
    quorum: usize,
    seed: u64,
    state: Option<String>,
    fault: Option<FaultPlan>,
    fault_seed: u64,
    telemetry_out: Option<String>,
    duration: Option<f64>,
    report: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut id = None;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut opts = Options {
        id: 0,
        listen: "0.0.0.0:0".parse().unwrap(),
        peers: Vec::new(),
        offset: 0.0,
        epoch_unix: None,
        drift: 0.0,
        drift_bound: 1e-4,
        initial_error: 0.01,
        period: 1.0,
        window: 0.25,
        strategy: Strategy::Mm,
        quorum: 1,
        seed: 0,
        state: None,
        fault: None,
        fault_seed: 1,
        telemetry_out: None,
        duration: None,
        report: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--report" {
            opts.report = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--id" => id = Some(parse(&value()?, "--id")?),
            "--listen" => listen = Some(parse_addr(&value()?)?),
            "--peer" => peers.push(parse_addr(&value()?)?),
            "--offset" => opts.offset = parse(&value()?, "--offset")?,
            "--epoch-unix" => opts.epoch_unix = Some(parse(&value()?, "--epoch-unix")?),
            "--drift" => opts.drift = parse(&value()?, "--drift")?,
            "--drift-bound" => opts.drift_bound = parse(&value()?, "--drift-bound")?,
            "--initial-error" => opts.initial_error = parse(&value()?, "--initial-error")?,
            "--period" => opts.period = parse(&value()?, "--period")?,
            "--window" => opts.window = parse(&value()?, "--window")?,
            "--strategy" => opts.strategy = parse_strategy(&value()?)?,
            "--quorum" => opts.quorum = parse(&value()?, "--quorum")?,
            "--seed" => opts.seed = parse(&value()?, "--seed")?,
            "--state" => opts.state = Some(value()?),
            "--fault" => opts.fault = Some(FaultPlan::parse(&value()?)?),
            "--fault-seed" => opts.fault_seed = parse(&value()?, "--fault-seed")?,
            "--telemetry-out" => opts.telemetry_out = Some(value()?),
            "--duration" => opts.duration = Some(parse(&value()?, "--duration")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    opts.id = id.ok_or("--id is required")?;
    opts.listen = listen.ok_or("--listen is required")?;
    opts.peers = peers;
    if opts.peers.len() < 2 {
        return Err("need at least two --peer addresses".into());
    }
    if opts.id >= opts.peers.len() {
        return Err(format!(
            "--id {} outside the {}-node --peer list",
            opts.id,
            opts.peers.len()
        ));
    }
    if opts.peers[opts.id] != opts.listen {
        return Err(format!(
            "--listen {} does not match peer[{}] = {}",
            opts.listen, opts.id, opts.peers[opts.id]
        ));
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse `{value}`"))
}

fn parse_addr(value: &str) -> Result<SocketAddr, String> {
    value
        .parse()
        .map_err(|_| format!("bad socket address `{value}`"))
}

fn parse_strategy(value: &str) -> Result<Strategy, String> {
    match value {
        "mm" => Ok(Strategy::Mm),
        "im" => Ok(Strategy::Im),
        other => match other.strip_prefix("tolerant:") {
            Some(f) => Ok(Strategy::MarzulloTolerant {
                max_faulty: parse(f, "--strategy tolerant:F")?,
            }),
            None => Err(format!("unknown strategy `{other}` (mm, im, tolerant:F)")),
        },
    }
}

/// Telemetry sink: every event, one JSON line, flushed on drop.
struct JsonlSink {
    out: BufWriter<std::fs::File>,
}

impl Observer for JsonlSink {
    fn enabled(&self, _kind: EventKind) -> bool {
        true
    }

    fn observe(&mut self, event: &TelemetryEvent) {
        let _ = writeln!(self.out, "{}", event_line(event));
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

fn run(opts: Options) -> Result<(), String> {
    // With an epoch, the OS wall clock plays the hardware clock: it
    // keeps running while the process is dead, so a relaunch against
    // the same --state rehydrates into a *continued* clock and the
    // MM-1 error grows across the downtime instead of resetting.
    let boot_value = match opts.epoch_unix {
        Some(epoch) => {
            let wall = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_err(|e| e.to_string())?
                .as_secs_f64();
            wall - epoch + opts.offset
        }
        None => opts.offset,
    };
    let clock = SimClock::builder()
        .initial_value(Timestamp::from_secs(boot_value))
        .drift(DriftModel::Constant(opts.drift))
        .seed(opts.seed)
        .build();
    let config = ServerConfig::new(opts.strategy, DriftRate::new(opts.drift_bound))
        .resync_period(Duration::from_secs(opts.period))
        .collect_window(Duration::from_secs(opts.window))
        .initial_error(Duration::from_secs(opts.initial_error))
        .retry(RetryPolicy::backoff_defaults())
        .quorum(opts.quorum);
    let store: Box<dyn StableStore> = match &opts.state {
        Some(path) => Box::new(FileStore::open(path).map_err(|e| e.to_string())?),
        None => Box::new(MemoryStore::new()),
    };
    let mut server = TimeServer::with_store(clock, config, store);
    if let Some(path) = &opts.telemetry_out {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        let bus = Bus::new();
        bus.subscribe(Rc::new(RefCell::new(JsonlSink {
            out: BufWriter::new(file),
        })));
        server.attach_bus(bus);
    }
    let socket = UdpSocket::bind(opts.listen).map_err(|e| e.to_string())?;
    signal::install();
    eprintln!(
        "tempod: node {} serving on {} ({} peers{})",
        opts.id,
        opts.listen,
        opts.peers.len() - 1,
        match &opts.fault {
            Some(plan) => format!(", faults {plan:?}"),
            None => String::new(),
        }
    );
    let deadline = opts.duration.map(Duration::from_secs);
    // Faulty and clean paths instantiate the runtime at different
    // socket types; each arm runs its own monomorphisation.
    match opts.fault.filter(FaultPlan::is_active) {
        Some(plan) => {
            let faulty = FaultyTransport::new(socket, plan, opts.fault_seed);
            let mut rt = UdpRuntime::new(server, faulty, opts.id, opts.peers.clone(), opts.seed);
            rt.run(|rt| deadline.is_some_and(|d| rt.elapsed() >= Timestamp::ZERO + d));
            report(&opts, &mut rt);
        }
        None => {
            let mut rt = UdpRuntime::new(server, socket, opts.id, opts.peers.clone(), opts.seed);
            rt.run(|rt| deadline.is_some_and(|d| rt.elapsed() >= Timestamp::ZERO + d));
            report(&opts, &mut rt);
        }
    }
    Ok(())
}

fn report<S: tempo_transport::DatagramSocket>(opts: &Options, rt: &mut UdpRuntime<S>) {
    if !opts.report {
        return;
    }
    let now = rt.elapsed();
    let server = rt.server_mut();
    let stats = server.stats();
    let active = server.is_active();
    let estimate = server.current_estimate(now);
    println!(
        "{{\"node\":{},\"active\":{},\"time\":{},\"error\":{},\"rounds\":{},\"resets\":{},\"malformed\":{}}}",
        opts.id,
        active,
        estimate.time().as_secs(),
        estimate.error().as_secs(),
        stats.rounds,
        stats.resets,
        stats.malformed_frames,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tempod: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if e.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("tempod: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        }
    }
}
