//! Socket-level fault injection: the simulator's loss/duplication/
//! delay knobs, re-created on *real* datagrams.
//!
//! The simulator proves the protocol tolerates the paper's §2 network
//! model; [`FaultyTransport`] proves the *deployment* does, by making
//! a real UDP socket misbehave the same way. It decorates any
//! [`DatagramSocket`] and perturbs outgoing datagrams: dropping them,
//! sending them twice, holding them back (which reorders them past
//! later sends), cutting them short, or replacing their bytes with
//! garbage. Injection is send-side so one faulty node degrades the
//! paths *from* it — the same convention as `NetConfig::loss` in the
//! simulator — and so the receive path exercises its malformed-frame
//! handling against genuinely corrupt frames.

use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tempo_core::Timestamp;
use tempo_net::EventQueue;

use crate::socket::DatagramSocket;

/// What to do to outgoing datagrams, as independent per-datagram
/// probabilities. Faults compose in a fixed order: loss first (a lost
/// datagram suffers nothing else), then duplication, then payload
/// corruption (truncate/garbage, mutually exclusive per copy), then
/// delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a datagram is silently dropped.
    pub loss: f64,
    /// Probability a datagram is sent twice.
    pub duplicate: f64,
    /// Probability a datagram is cut to a strictly shorter prefix.
    pub truncate: f64,
    /// Probability a datagram's payload is replaced with random bytes
    /// of the same length (checksum-breaking garbage).
    pub garbage: f64,
    /// Probability a datagram is held back before transmission.
    pub delay: f64,
    /// Hold-back interval bounds, uniform within, for delayed
    /// datagrams. A held datagram overtaken by a later immediate send
    /// arrives reordered.
    pub delay_range: (Duration, Duration),
}

impl FaultPlan {
    /// The identity plan: every datagram passes through untouched.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            loss: 0.0,
            duplicate: 0.0,
            truncate: 0.0,
            garbage: 0.0,
            delay: 0.0,
            delay_range: (Duration::ZERO, Duration::ZERO),
        }
    }

    /// Whether this plan can ever perturb a datagram.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.duplicate > 0.0
            || self.truncate > 0.0
            || self.garbage > 0.0
            || self.delay > 0.0
    }

    /// Parses the `tempod --fault` syntax: comma-separated
    /// `key=value` pairs, e.g. `loss=0.2,dup=0.1,delay=0.3:0.01:0.05`
    /// (probability, then min and max hold-back seconds),
    /// `truncate=0.05`, `garbage=0.05`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed pair.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{pair}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault `{key}`: bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault `{key}`: probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "loss" => plan.loss = prob(value)?,
                "dup" | "duplicate" => plan.duplicate = prob(value)?,
                "truncate" => plan.truncate = prob(value)?,
                "garbage" => plan.garbage = prob(value)?,
                "delay" => {
                    let mut parts = value.split(':');
                    plan.delay = prob(parts.next().unwrap_or_default())?;
                    let min: f64 = parts
                        .next()
                        .unwrap_or("0.01")
                        .parse()
                        .map_err(|_| format!("fault `delay`: bad min seconds in `{value}`"))?;
                    let max: f64 = parts
                        .next()
                        .unwrap_or(&min.to_string())
                        .parse()
                        .map_err(|_| format!("fault `delay`: bad max seconds in `{value}`"))?;
                    if min < 0.0 || max < min {
                        return Err(format!(
                            "fault `delay`: need 0 <= min <= max, got {min}:{max}"
                        ));
                    }
                    plan.delay_range = (Duration::from_secs_f64(min), Duration::from_secs_f64(max));
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Held datagrams, parked in the shared [`EventQueue`] timing wheel
/// (which orders by due time with an insertion-sequence tiebreak) on a
/// [`Timestamp`] axis anchored at `epoch`.
struct FlusherState {
    queue: EventQueue<(Vec<u8>, SocketAddr)>,
    epoch: Instant,
    shutdown: bool,
}

impl FlusherState {
    fn due_key(&self, due: Instant) -> Timestamp {
        Timestamp::from_secs(due.saturating_duration_since(self.epoch).as_secs_f64())
    }

    fn pop_due(&mut self, now: Instant) -> Option<(Vec<u8>, SocketAddr)> {
        let due = self.queue.peek_time()?;
        if due > self.due_key(now) {
            return None;
        }
        self.queue.pop().map(|(_, held)| held)
    }

    fn next_due(&mut self) -> Option<Instant> {
        self.queue
            .peek_time()
            .map(|t| self.epoch + Duration::from_secs_f64(t.as_secs()))
    }
}

/// A [`DatagramSocket`] decorator that injects a [`FaultPlan`] into
/// outgoing datagrams.
///
/// Delayed datagrams are parked on a background flusher thread and
/// transmitted through the *inner* socket when due, so `send_to` never
/// blocks the protocol loop. Dropping the decorator stops the flusher;
/// datagrams still parked at that point are lost, which is exactly
/// what a fault injector should do on teardown.
pub struct FaultyTransport<S: DatagramSocket> {
    inner: Arc<S>,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    state: Arc<(Mutex<FlusherState>, Condvar)>,
    flusher: Option<JoinHandle<()>>,
}

impl<S: DatagramSocket> std::fmt::Debug for FaultyTransport<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl<S: DatagramSocket> FaultyTransport<S> {
    /// Wraps `inner`, perturbing its sends per `plan`. `seed` makes
    /// the fault schedule reproducible for a fixed send sequence.
    pub fn new(inner: S, plan: FaultPlan, seed: u64) -> Self {
        let inner = Arc::new(inner);
        let state = Arc::new((
            Mutex::new(FlusherState {
                queue: EventQueue::new(),
                epoch: Instant::now(),
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let flusher = if plan.delay > 0.0 {
            let socket = Arc::clone(&inner);
            let shared = Arc::clone(&state);
            Some(std::thread::spawn(move || flusher_loop(&socket, &shared)))
        } else {
            None
        };
        FaultyTransport {
            inner,
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            state,
            flusher,
        }
    }

    /// The active fault plan.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Applies per-copy payload corruption (truncate/garbage).
    fn corrupt(&self, rng: &mut StdRng, payload: &[u8]) -> Vec<u8> {
        if self.plan.truncate > 0.0 && rng.random::<f64>() < self.plan.truncate {
            // Strictly shorter, possibly empty: every prefix length
            // must die in the receiver's codec, not in the protocol.
            let cut = rng.random_range(0..payload.len().max(1));
            return payload[..cut].to_vec();
        }
        if self.plan.garbage > 0.0 && rng.random::<f64>() < self.plan.garbage {
            return (0..payload.len()).map(|_| rng.random::<u8>()).collect();
        }
        payload.to_vec()
    }

    /// Ships one (possibly corrupted) copy: immediately, or parked on
    /// the flusher when the delay fault fires.
    fn ship(&self, rng: &mut StdRng, payload: Vec<u8>, addr: SocketAddr) -> io::Result<()> {
        if self.flusher.is_some() && self.plan.delay > 0.0 && rng.random::<f64>() < self.plan.delay
        {
            let (min, max) = self.plan.delay_range;
            let span = max.saturating_sub(min);
            let extra = if span.is_zero() {
                Duration::ZERO
            } else {
                span.mul_f64(rng.random::<f64>())
            };
            let due = Instant::now() + min + extra;
            let (lock, cvar) = &*self.state;
            let mut state = lock.lock().unwrap();
            let key = state.due_key(due);
            let _ = state.queue.push(key, (payload, addr));
            cvar.notify_one();
            return Ok(());
        }
        self.inner.send_to(&payload, addr).map(|_| ())
    }
}

fn flusher_loop<S: DatagramSocket>(socket: &Arc<S>, shared: &Arc<(Mutex<FlusherState>, Condvar)>) {
    let (lock, cvar) = &**shared;
    let mut state = lock.lock().unwrap();
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        while let Some((payload, addr)) = state.pop_due(now) {
            // Send without the lock so a slow send can't stall
            // `send_to` callers parking new datagrams.
            drop(state);
            let _ = socket.send_to(&payload, addr);
            state = lock.lock().unwrap();
            if state.shutdown {
                return;
            }
        }
        state = match state.next_due() {
            Some(due) => {
                let wait = due.saturating_duration_since(Instant::now());
                cvar.wait_timeout(state, wait).unwrap().0
            }
            None => cvar.wait(state).unwrap(),
        };
    }
}

impl<S: DatagramSocket> Drop for FaultyTransport<S> {
    fn drop(&mut self) {
        if let Some(handle) = self.flusher.take() {
            let (lock, cvar) = &*self.state;
            lock.lock().unwrap().shutdown = true;
            cvar.notify_all();
            let _ = handle.join();
        }
    }
}

impl<S: DatagramSocket> DatagramSocket for FaultyTransport<S> {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        let mut rng = self.rng.lock().unwrap();
        if self.plan.loss > 0.0 && rng.random::<f64>() < self.plan.loss {
            // Lost on the wire: the caller believes it sent.
            return Ok(buf.len());
        }
        let copies = if self.plan.duplicate > 0.0 && rng.random::<f64>() < self.plan.duplicate {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let payload = self.corrupt(&mut rng, buf);
            self.ship(&mut rng, payload, addr)?;
        }
        Ok(buf.len())
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn configure_read_timeout(&self, wait: std::time::Duration) {
        self.inner.configure_read_timeout(wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records sends; never receives.
    #[derive(Debug, Default)]
    struct RecordingSocket {
        sent: Mutex<Vec<(Vec<u8>, SocketAddr)>>,
    }

    impl RecordingSocket {
        fn sent(&self) -> Vec<(Vec<u8>, SocketAddr)> {
            self.sent.lock().unwrap().clone()
        }
    }

    impl DatagramSocket for RecordingSocket {
        fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
            self.sent.lock().unwrap().push((buf.to_vec(), addr));
            Ok(buf.len())
        }

        fn recv_from(&self, _buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
            Err(io::Error::new(io::ErrorKind::WouldBlock, "no traffic"))
        }

        fn local_addr(&self) -> io::Result<SocketAddr> {
            Ok(addr())
        }
    }

    fn addr() -> SocketAddr {
        "127.0.0.1:9".parse().unwrap()
    }

    fn faulty(plan: FaultPlan) -> FaultyTransport<RecordingSocket> {
        FaultyTransport::new(RecordingSocket::default(), plan, 7)
    }

    #[test]
    fn identity_plan_passes_datagrams_through() {
        let t = faulty(FaultPlan::none());
        t.send_to(b"hello", addr()).unwrap();
        assert_eq!(t.inner.sent(), vec![(b"hello".to_vec(), addr())]);
    }

    #[test]
    fn certain_loss_drops_everything_but_reports_success() {
        let t = faulty(FaultPlan {
            loss: 1.0,
            ..FaultPlan::none()
        });
        assert_eq!(t.send_to(b"hello", addr()).unwrap(), 5);
        assert!(t.inner.sent().is_empty());
    }

    #[test]
    fn certain_duplication_sends_twice() {
        let t = faulty(FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::none()
        });
        t.send_to(b"hello", addr()).unwrap();
        let sent = t.inner.sent();
        assert_eq!(sent.len(), 2);
        assert!(sent.iter().all(|(p, _)| p == b"hello"));
    }

    #[test]
    fn certain_truncation_strictly_shortens() {
        let t = faulty(FaultPlan {
            truncate: 1.0,
            ..FaultPlan::none()
        });
        for _ in 0..32 {
            t.send_to(b"0123456789", addr()).unwrap();
        }
        let sent = t.inner.sent();
        assert_eq!(sent.len(), 32);
        assert!(sent.iter().all(|(p, _)| p.len() < 10));
        assert!(sent.iter().all(|(p, _)| *p == b"0123456789"[..p.len()]));
    }

    #[test]
    fn certain_garbage_keeps_length_but_scrambles_some_payloads() {
        let t = faulty(FaultPlan {
            garbage: 1.0,
            ..FaultPlan::none()
        });
        for _ in 0..16 {
            t.send_to(b"0123456789", addr()).unwrap();
        }
        let sent = t.inner.sent();
        assert!(sent.iter().all(|(p, _)| p.len() == 10));
        // Random bytes could coincide once, not sixteen times.
        assert!(sent.iter().any(|(p, _)| p != b"0123456789"));
    }

    #[test]
    fn delayed_datagrams_arrive_after_the_hold_back() {
        let t = faulty(FaultPlan {
            delay: 1.0,
            delay_range: (Duration::from_millis(30), Duration::from_millis(60)),
            ..FaultPlan::none()
        });
        t.send_to(b"late", addr()).unwrap();
        assert!(t.inner.sent().is_empty(), "datagram left too early");
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.inner.sent().is_empty() {
            assert!(Instant::now() < deadline, "datagram never flushed");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.inner.sent(), vec![(b"late".to_vec(), addr())]);
    }

    #[test]
    fn delay_reorders_past_immediate_sends() {
        // Deterministic reordering: park one datagram on the flusher,
        // then bypass the decorator for the second. The parked one
        // must land after the bypassing one.
        let t = faulty(FaultPlan {
            delay: 1.0,
            delay_range: (Duration::from_millis(40), Duration::from_millis(40)),
            ..FaultPlan::none()
        });
        t.send_to(b"first", addr()).unwrap();
        t.inner.send_to(b"second", addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.inner.sent().len() < 2 {
            assert!(Instant::now() < deadline, "delayed datagram never flushed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let order: Vec<Vec<u8>> = t.inner.sent().into_iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![b"second".to_vec(), b"first".to_vec()]);
    }

    #[test]
    fn fault_spec_parses() {
        let plan = FaultPlan::parse("loss=0.2,dup=0.1,delay=0.3:0.01:0.05,truncate=0.05").unwrap();
        assert_eq!(plan.loss, 0.2);
        assert_eq!(plan.duplicate, 0.1);
        assert_eq!(plan.delay, 0.3);
        assert_eq!(
            plan.delay_range,
            (Duration::from_millis(10), Duration::from_millis(50))
        );
        assert_eq!(plan.truncate, 0.05);
        assert_eq!(plan.garbage, 0.0);
        assert!(plan.is_active());
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn fault_spec_rejects_nonsense() {
        assert!(FaultPlan::parse("loss=1.5").is_err());
        assert!(FaultPlan::parse("warp=0.1").is_err());
        assert!(FaultPlan::parse("loss").is_err());
        assert!(FaultPlan::parse("delay=0.5:0.2:0.1").is_err());
    }
}
