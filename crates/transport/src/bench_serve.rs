//! The serving-throughput benchmark behind `tempod --bench-serve`:
//! the repo's first measurable point on the BENCH trajectory.
//!
//! One publisher runs a real [`crate::UdpRuntime`] on loopback (the
//! sync actor, polling its protocol socket); pipelined closed-loop
//! client threads then hammer four serving configurations in turn:
//!
//! 1. `sync_actor` — single-request frames go to the protocol socket
//!    and funnel through the single-threaded actor event loop (the
//!    pre-split path, the baseline; the protocol codec has no batch
//!    type, so one request per datagram is all it can do);
//! 2. `snapshot_front_1|4|8` — *batch* frames (`window` requests per
//!    datagram) go to a dedicated [`crate::ServeFront`] socket served
//!    by 1, 4, or 8 reader threads straight from the seqlock-published
//!    snapshot, one batch reply per batch request.
//!
//! Each client keeps a window of work in flight — pipelined single
//! requests against the actor, pipelined request batches against the
//! fronts — timestamps every send, and records the round-trip of
//! every reply; a receive timeout writes the in-flight window off as
//! lost and refills it, so a dropped datagram (overflowed socket
//! buffer under load) never wedges the loop. Requests/sec is
//! replies-received over wall time — honest goodput, not offered
//! load — and latency percentiles come from the merged per-request
//! samples.
//!
//! The report serialises to the `BENCH_8.json` schema documented in
//! EXPERIMENTS.md.

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use tempo_clocks::{DriftModel, SimClock};
use tempo_core::{DriftRate, Duration, SnapshotReader, Timestamp};
use tempo_service::wire::{decode, decode_batch, encode, encode_batch_into};
use tempo_service::{Message, ServerConfig, Strategy, TimeServer};

use crate::serve::{ServeFront, ServeOptions};
use crate::UdpRuntime;

/// Benchmark shape.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Seconds of measurement per configuration.
    pub duration: f64,
    /// Client threads driving load.
    pub clients: usize,
    /// Pipelined requests in flight per client.
    pub window: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            duration: 2.0,
            clients: 8,
            window: 8,
        }
    }
}

/// One configuration's measured result.
#[derive(Debug, Clone)]
pub struct ConfigReport {
    /// Configuration name (`sync_actor`, `snapshot_front_N`).
    pub label: String,
    /// Serving threads (0 for the sync-actor baseline).
    pub threads: usize,
    /// Replies received per second of wall time (goodput).
    pub requests_per_sec: f64,
    /// Median round-trip, microseconds.
    pub p50_us: f64,
    /// 99th-percentile round-trip, microseconds.
    pub p99_us: f64,
    /// Total replies received.
    pub replies: u64,
    /// Requests written off by client-side receive timeouts.
    pub lost: u64,
}

/// The publisher half: a real runtime polling its protocol socket in
/// a background thread, exporting the snapshot reader for the fronts.
struct Publisher {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
    /// Protocol (sync actor) address — the baseline target.
    addr: SocketAddr,
    reader: SnapshotReader,
    epoch: Instant,
}

impl Publisher {
    fn spawn() -> Publisher {
        let stop = Arc::new(AtomicBool::new(false));
        let stopped = Arc::clone(&stop);
        let (tx, rx) = mpsc::channel();
        // The runtime is built *inside* the thread (the server's
        // telemetry bus is deliberately not Send); only the cloneable
        // reader handle and the time epoch come back out.
        let handle = std::thread::Builder::new()
            .name("tempo-bench-publisher".into())
            .spawn(move || {
                let clock = SimClock::builder()
                    .initial_value(Timestamp::from_secs(1000.0))
                    .drift(DriftModel::Constant(0.0))
                    .build();
                let config = ServerConfig::new(Strategy::Mm, DriftRate::new(1e-4))
                    .resync_period(Duration::from_secs(1.0))
                    .collect_window(Duration::from_secs(0.25))
                    .initial_error(Duration::from_secs(0.01));
                let server = TimeServer::new(clock, config);
                let socket = UdpSocket::bind("127.0.0.1:0").expect("bind publisher socket");
                let addr = socket.local_addr().expect("publisher addr");
                // A single-node cluster: no peers to sync against, so
                // the actor's only datagram work is answering clients —
                // the cleanest possible baseline.
                let mut rt = UdpRuntime::new(server, socket, 0, vec![addr], 7);
                rt.start();
                tx.send((addr, rt.server().snapshot_reader(), rt.clock_epoch()))
                    .expect("hand out reader");
                while !stopped.load(Ordering::Relaxed) {
                    rt.poll(std::time::Duration::from_millis(1));
                }
                rt.shutdown();
            })
            .expect("spawn publisher");
        let (addr, reader, epoch) = rx.recv().expect("publisher never started");
        Publisher {
            stop,
            handle,
            addr,
            reader,
            epoch,
        }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// One pipelined closed-loop client. Returns (latencies µs, lost).
fn client_loop(
    target: SocketAddr,
    deadline: Instant,
    thread_id: u64,
    window: usize,
) -> (Vec<f64>, u64) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client socket");
    socket
        .set_read_timeout(Some(std::time::Duration::from_millis(20)))
        .expect("client read timeout");
    let mut next_id = thread_id << 32;
    let mut in_flight: HashMap<u64, Instant> = HashMap::with_capacity(window * 2);
    let mut latencies: Vec<f64> = Vec::with_capacity(1 << 16);
    let mut lost = 0u64;
    let mut buf = [0u8; 512];
    let send_one = |in_flight: &mut HashMap<u64, Instant>, next_id: &mut u64| {
        let frame = encode(&Message::TimeRequest {
            request_id: *next_id,
            attempt: 0,
        });
        if socket.send_to(&frame, target).is_ok() {
            in_flight.insert(*next_id, Instant::now());
        }
        *next_id += 1;
    };
    for _ in 0..window {
        send_one(&mut in_flight, &mut next_id);
    }
    while Instant::now() < deadline {
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                if let Ok(msg) = decode(&buf[..len]) {
                    let id = match msg {
                        Message::TimeReply { request_id, .. }
                        | Message::Uninitialized { request_id } => request_id,
                        Message::TimeRequest { .. } => continue,
                    };
                    if let Some(sent) = in_flight.remove(&id) {
                        latencies.push(sent.elapsed().as_secs_f64() * 1e6);
                    }
                }
                send_one(&mut in_flight, &mut next_id);
            }
            Err(_) => {
                // The whole window is presumed dropped (socket-buffer
                // overflow under load): write it off and refill, so
                // the pipeline never wedges on a lost datagram.
                lost += in_flight.len() as u64;
                in_flight.clear();
                for _ in 0..window {
                    send_one(&mut in_flight, &mut next_id);
                }
            }
        }
    }
    (latencies, lost)
}

/// Request batches a client keeps in flight against a batch-capable
/// target. Shallow enough that loss write-offs stay cheap, deep
/// enough that the pipeline never drains between replies.
const BATCH_DEPTH: usize = 4;

/// One pipelined closed-loop *batch* client: `BATCH_DEPTH` batches of
/// `window` requests in flight, one datagram per batch. Only valid
/// against a `ServeFront` — the protocol codec rejects batch frames.
/// Returns (latencies µs, lost).
fn batch_client_loop(
    target: SocketAddr,
    deadline: Instant,
    thread_id: u64,
    window: usize,
) -> (Vec<f64>, u64) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client socket");
    socket
        .set_read_timeout(Some(std::time::Duration::from_millis(20)))
        .expect("client read timeout");
    let mut next_id = thread_id << 32;
    // Batches are keyed by their first request id: replies preserve
    // request order, so a reply batch's first id names its batch.
    let mut in_flight: HashMap<u64, (Instant, usize)> = HashMap::with_capacity(BATCH_DEPTH * 2);
    let mut latencies: Vec<f64> = Vec::with_capacity(1 << 16);
    let mut lost = 0u64;
    let mut buf = [0u8; 16384];
    let mut requests: Vec<Message> = Vec::with_capacity(window);
    let mut frame: Vec<u8> = Vec::with_capacity(64 + 16 * window);
    let mut send_batch = |in_flight: &mut HashMap<u64, (Instant, usize)>, next_id: &mut u64| {
        let first = *next_id;
        requests.clear();
        for _ in 0..window {
            requests.push(Message::TimeRequest {
                request_id: *next_id,
                attempt: 0,
            });
            *next_id += 1;
        }
        frame.clear();
        encode_batch_into(&requests, &mut frame);
        if socket.send_to(&frame, target).is_ok() {
            in_flight.insert(first, (Instant::now(), window));
        }
    };
    for _ in 0..BATCH_DEPTH {
        send_batch(&mut in_flight, &mut next_id);
    }
    while Instant::now() < deadline {
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                if let Ok(replies) = decode_batch(&buf[..len]) {
                    let first = replies.first().and_then(|m| match m {
                        Message::TimeReply { request_id, .. }
                        | Message::Uninitialized { request_id } => Some(*request_id),
                        Message::TimeRequest { .. } => None,
                    });
                    if let Some((sent, expected)) = first.and_then(|id| in_flight.remove(&id)) {
                        let us = sent.elapsed().as_secs_f64() * 1e6;
                        for _ in 0..replies.len() {
                            latencies.push(us);
                        }
                        lost += expected.saturating_sub(replies.len()) as u64;
                    }
                }
                send_batch(&mut in_flight, &mut next_id);
            }
            Err(_) => {
                lost += in_flight.values().map(|(_, n)| *n as u64).sum::<u64>();
                in_flight.clear();
                for _ in 0..BATCH_DEPTH {
                    send_batch(&mut in_flight, &mut next_id);
                }
            }
        }
    }
    (latencies, lost)
}

/// Drives `opts.clients` pipelined clients at `target` for
/// `opts.duration` seconds and folds their samples into one report.
/// `batch` selects the batch-frame client (fronts only).
fn measure(
    label: &str,
    threads: usize,
    target: SocketAddr,
    opts: &BenchOptions,
    batch: bool,
) -> ConfigReport {
    let deadline = Instant::now() + std::time::Duration::from_secs_f64(opts.duration);
    let started = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let window = opts.window;
            std::thread::Builder::new()
                .name(format!("tempo-bench-client-{c}"))
                .spawn(move || {
                    if batch {
                        batch_client_loop(target, deadline, c as u64 + 1, window)
                    } else {
                        client_loop(target, deadline, c as u64 + 1, window)
                    }
                })
                .expect("spawn client")
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut lost = 0u64;
    for h in handles {
        let (mut l, dropped) = h.join().expect("client thread panicked");
        latencies.append(&mut l);
        lost += dropped;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    ConfigReport {
        label: label.to_string(),
        threads,
        requests_per_sec: latencies.len() as f64 / elapsed,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        replies: latencies.len() as u64,
        lost,
    }
}

/// Runs the full benchmark: the sync-actor baseline, then 1-, 4-, and
/// 8-thread snapshot fronts, all against one live publisher.
#[must_use]
pub fn run(opts: &BenchOptions) -> Vec<ConfigReport> {
    assert!(
        (1..=tempo_service::wire::MAX_BATCH).contains(&opts.window),
        "window must fit a batch frame (1..=255)"
    );
    let publisher = Publisher::spawn();
    // Let the publisher join and publish its first serving snapshot.
    let wait_deadline = Instant::now() + std::time::Duration::from_secs(5);
    while !publisher.reader.read().is_some_and(|s| s.serving) {
        assert!(
            Instant::now() < wait_deadline,
            "publisher never reached the serving state"
        );
        std::thread::yield_now();
    }
    let mut reports = Vec::with_capacity(4);
    reports.push(measure("sync_actor", 0, publisher.addr, opts, false));
    for threads in [1usize, 4, 8] {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind serve socket");
        let front = ServeFront::spawn(
            socket,
            publisher.reader.clone(),
            publisher.epoch,
            &ServeOptions {
                threads,
                admission: None,
            },
        )
        .expect("spawn serving front");
        reports.push(measure(
            &format!("snapshot_front_{threads}"),
            threads,
            front.local_addr(),
            opts,
            true,
        ));
        front.stop();
    }
    publisher.stop();
    reports
}

/// Serialises reports to the `BENCH_8.json` document (hand-rolled —
/// the workspace carries no JSON dependency).
#[must_use]
pub fn to_json(opts: &BenchOptions, reports: &[ConfigReport]) -> String {
    let baseline = reports
        .iter()
        .find(|r| r.threads == 0)
        .map_or(f64::NAN, |r| r.requests_per_sec);
    let four = reports
        .iter()
        .find(|r| r.threads == 4)
        .map_or(f64::NAN, |r| r.requests_per_sec);
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"benchmark\": \"serving_throughput\",\n");
    out.push_str(&format!(
        "  \"duration_secs\": {}, \"clients\": {}, \"window\": {},\n",
        opts.duration, opts.clients, opts.window
    ));
    out.push_str("  \"configs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"threads\": {}, \"requests_per_sec\": {:.1}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"replies\": {}, \"lost\": {}}}{}\n",
            r.label,
            r.threads,
            r.requests_per_sec,
            r.p50_us,
            r.p99_us,
            r.replies,
            r.lost,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_4_thread_vs_sync_actor\": {:.3}\n}}\n",
        four / baseline
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_all_four_configs() {
        let opts = BenchOptions {
            duration: 0.15,
            clients: 2,
            window: 2,
        };
        let reports = run(&opts);
        assert_eq!(reports.len(), 4);
        let labels: Vec<&str> = reports.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "sync_actor",
                "snapshot_front_1",
                "snapshot_front_4",
                "snapshot_front_8"
            ]
        );
        for r in &reports {
            assert!(r.replies > 0, "{}: no replies at all", r.label);
            assert!(r.requests_per_sec > 0.0);
            assert!(r.p50_us.is_finite() && r.p99_us >= r.p50_us);
        }
        let json = to_json(&opts, &reports);
        assert!(json.contains("\"benchmark\": \"serving_throughput\""));
        assert!(json.contains("snapshot_front_8"));
        assert!(json.contains("speedup_4_thread_vs_sync_actor"));
    }
}
