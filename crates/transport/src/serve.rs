//! The multi-threaded serving front: the fast half of the
//! sync-core / serving-front split.
//!
//! The paper's read operation is a pure function of the last published
//! `(r, ε)` pair, so it does not need the sync actor at all —
//! [`ServeFront`] spawns N threads that share a dedicated UDP socket
//! (each thread owns a `try_clone`d handle; the kernel distributes
//! datagrams among concurrent receivers), answer `TimeRequest`s
//! straight from the actor's seqlock-published
//! [`tempo_core::ClockSnapshot`], and never touch the protocol event
//! loop. The sync runtime keeps its own socket: serving threads can
//! never steal a peer's protocol datagram.
//!
//! Clients may send single request frames (answered with single reply
//! frames) or batch frames of up to 255 requests (answered with one
//! batch frame of replies — see `tempo_service::wire`'s batch layout).
//! Reply encoding appends to one reusable per-thread buffer, so the
//! steady-state reply path allocates nothing.
//!
//! An optional admission tier — [`tempo_service::AdmissionControl`],
//! one token bucket per thread with a `1/N` share of the global rate —
//! shaves overload *before* any decode work happens, keeping the tier
//! itself off the shared path.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tempo_core::{SnapshotReader, Timestamp};
use tempo_service::wire::{decode, decode_batch, encode_batch_into, encode_into, is_batch_frame};
use tempo_service::{AdmissionControl, Message};

/// How the serving front is shaped.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Reader threads sharing the serve socket.
    pub threads: usize,
    /// Optional admission tier: global `(rate, burst)` in requests/s
    /// and requests, split evenly across the threads.
    pub admission: Option<(f64, f64)>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            admission: None,
        }
    }
}

/// Shared live counters, aggregated across the reader threads.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    refused: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    batches: AtomicU64,
}

/// A point-in-time view of the front's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with a `TimeReply`.
    pub served: u64,
    /// Requests answered with `Uninitialized` (publisher not serving).
    pub refused: u64,
    /// Requests dropped by the admission tier.
    pub rejected: u64,
    /// Datagrams that failed the wire codec.
    pub malformed: u64,
    /// Batch frames processed.
    pub batches: u64,
}

/// Handle to a running serving front; dropping it without
/// [`ServeFront::stop`] detaches the threads (they stop at the next
/// timeout tick once the handle's stop flag drops to them — `stop` is
/// the orderly way out).
#[derive(Debug)]
pub struct ServeFront {
    threads: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    local_addr: std::net::SocketAddr,
}

impl ServeFront {
    /// Spawns the reader threads on `socket`.
    ///
    /// * `reader` — the sync core's published snapshot (see
    ///   `TimeServer::snapshot_reader`).
    /// * `epoch` — the instant the *publisher's* real-time axis calls
    ///   zero (the runtime's construction instant, see
    ///   `UdpRuntime::clock_epoch`): serving threads measure "now" on
    ///   the same axis the snapshot's affine base was published on.
    ///
    /// # Errors
    ///
    /// Returns the socket error if cloning or configuring the shared
    /// socket fails.
    ///
    /// # Panics
    ///
    /// Panics when `options.threads` is zero.
    pub fn spawn(
        socket: UdpSocket,
        reader: SnapshotReader,
        epoch: Instant,
        options: &ServeOptions,
    ) -> std::io::Result<ServeFront> {
        assert!(options.threads > 0, "a serving front needs a thread");
        let local_addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let mut threads = Vec::with_capacity(options.threads);
        for i in 0..options.threads {
            // Each thread owns a cloned handle onto the same bound
            // socket; concurrent recv_from calls race for datagrams,
            // which is exactly the fan-out we want.
            let socket = socket.try_clone()?;
            socket.set_read_timeout(Some(std::time::Duration::from_millis(5)))?;
            let reader = reader.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let admission = options.admission.map(|(rate, burst)| {
                let share = options.threads as f64;
                AdmissionControl::new(rate / share, (burst / share).max(1.0))
            });
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tempo-serve-{i}"))
                    .spawn(move || serve_loop(&socket, &reader, epoch, &stop, &counters, admission))
                    .expect("spawn serving thread"),
            );
        }
        Ok(ServeFront {
            threads,
            stop,
            counters,
            local_addr,
        })
    }

    /// The serve socket's bound address (clients dial this, not the
    /// sync runtime's protocol port).
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Live counters (monotone; callable while the front runs).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.counters.served.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            malformed: self.counters.malformed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    /// Stops the reader threads and returns the final counters.
    pub fn stop(self) -> ServeStats {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            let _ = t.join();
        }
        ServeStats {
            served: self.counters.served.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            malformed: self.counters.malformed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }
}

/// One request answered from the snapshot: a `TimeReply` when the
/// publisher serves, an `Uninitialized` refusal otherwise — mirroring
/// the actor's own behaviour in those lifecycle states.
fn respond(reader: &SnapshotReader, request_id: u64, now: Timestamp) -> Message {
    match reader.serve(now) {
        Some(estimate) => Message::TimeReply {
            request_id,
            // The actor replies with its reading at receipt; the
            // snapshot's estimate time *is* that reading.
            received_at: estimate.time(),
            estimate,
        },
        None => Message::Uninitialized { request_id },
    }
}

/// The per-thread receive/answer loop.
fn serve_loop(
    socket: &UdpSocket,
    reader: &SnapshotReader,
    epoch: Instant,
    stop: &AtomicBool,
    counters: &Counters,
    mut admission: Option<AdmissionControl>,
) {
    let mut buf = [0u8; 16 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(4 + 255 * 38 + 2);
    let mut replies: Vec<Message> = Vec::with_capacity(64);
    while !stop.load(Ordering::Relaxed) {
        let (len, from) = match socket.recv_from(&mut buf) {
            Ok(hit) => hit,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        let now = Timestamp::from_secs(epoch.elapsed().as_secs_f64());
        if let Some(a) = admission.as_mut() {
            if !a.admit(now) {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        out.clear();
        if is_batch_frame(&buf[..len]) {
            match decode_batch(&buf[..len]) {
                Ok(msgs) => {
                    replies.clear();
                    for msg in msgs {
                        if let Message::TimeRequest { request_id, .. } = msg {
                            replies.push(respond(reader, request_id, now));
                        }
                    }
                    if replies.is_empty() {
                        continue;
                    }
                    counters.batches.fetch_add(1, Ordering::Relaxed);
                    note_replies(counters, &replies);
                    encode_batch_into(&replies, &mut out);
                }
                Err(_) => {
                    counters.malformed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        } else {
            match decode(&buf[..len]) {
                Ok(Message::TimeRequest { request_id, .. }) => {
                    let reply = respond(reader, request_id, now);
                    note_replies(counters, std::slice::from_ref(&reply));
                    encode_into(&reply, &mut out);
                }
                // Replies/refusals aimed at a serve port are nonsense;
                // drop silently like any UDP service would.
                Ok(_) => continue,
                Err(_) => {
                    counters.malformed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
        let _ = socket.send_to(&out, from);
    }
}

/// Counts a reply set into the served/refused counters.
fn note_replies(counters: &Counters, replies: &[Message]) {
    let mut served = 0;
    let mut refused = 0;
    for r in replies {
        match r {
            Message::TimeReply { .. } => served += 1,
            Message::Uninitialized { .. } => refused += 1,
            Message::TimeRequest { .. } => {}
        }
    }
    if served > 0 {
        counters.served.fetch_add(served, Ordering::Relaxed);
    }
    if refused > 0 {
        counters.refused.fetch_add(refused, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use tempo_core::{ClockSnapshot, DriftRate, Duration, SnapshotCell};

    fn published_reader(serving: bool) -> SnapshotReader {
        let cell = SnapshotCell::new();
        cell.publish(&ClockSnapshot {
            reset_clock: Timestamp::from_secs(100.0),
            inherited_error: Duration::from_secs(0.01),
            drift_bound: DriftRate::new(1e-4),
            base_clock: Timestamp::from_secs(100.0),
            base_real: Timestamp::from_secs(0.0),
            epoch: 0,
            serving,
        });
        SnapshotReader::new(Arc::new(cell))
    }

    fn front(serving: bool, options: &ServeOptions) -> (ServeFront, UdpSocket) {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let front =
            ServeFront::spawn(socket, published_reader(serving), Instant::now(), options).unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(100)))
            .unwrap();
        (front, client)
    }

    fn request(id: u64) -> Message {
        Message::TimeRequest {
            request_id: id,
            attempt: 0,
        }
    }

    #[test]
    fn single_request_gets_a_snapshot_reply() {
        let (front, client) = front(true, &ServeOptions::default());
        let addr = front.local_addr();
        let mut buf = [0u8; 512];
        client
            .send_to(&tempo_service::wire::encode(&request(7)), addr)
            .unwrap();
        let (len, _) = client.recv_from(&mut buf).expect("reply");
        match decode(&buf[..len]).unwrap() {
            Message::TimeReply {
                request_id,
                received_at,
                estimate,
            } => {
                assert_eq!(request_id, 7);
                assert_eq!(received_at, estimate.time());
                // The published base is C=100 at real 0; the reply is
                // moments later.
                assert!(estimate.time() >= Timestamp::from_secs(100.0));
                assert!(estimate.time() < Timestamp::from_secs(101.0));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let stats = front.stop();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.malformed, 0);
    }

    #[test]
    fn not_serving_publisher_refuses() {
        let (front, client) = front(false, &ServeOptions::default());
        let addr = front.local_addr();
        let mut buf = [0u8; 512];
        client
            .send_to(&tempo_service::wire::encode(&request(9)), addr)
            .unwrap();
        let (len, _) = client.recv_from(&mut buf).expect("refusal");
        assert_eq!(
            decode(&buf[..len]).unwrap(),
            Message::Uninitialized { request_id: 9 }
        );
        let stats = front.stop();
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn batch_of_requests_gets_one_batch_of_replies() {
        let (front, client) = front(true, &ServeOptions::default());
        let addr = front.local_addr();
        let requests: Vec<Message> = (0..5).map(request).collect();
        client
            .send_to(&tempo_service::wire::encode_batch(&requests), addr)
            .unwrap();
        let mut buf = [0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).expect("batch reply");
        let replies = decode_batch(&buf[..len]).expect("well-formed batch");
        assert_eq!(replies.len(), 5);
        for (i, r) in replies.iter().enumerate() {
            match r {
                Message::TimeReply { request_id, .. } => assert_eq!(*request_id, i as u64),
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = front.stop();
        assert_eq!(stats.served, 5);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn garbage_is_counted_and_dropped() {
        let (front, client) = front(true, &ServeOptions::default());
        let addr = front.local_addr();
        client.send_to(&[0xFF; 32], addr).unwrap();
        client.send_to(&[0x7E, 0x30, 4, 1, 0], addr).unwrap(); // truncated batch
        client
            .send_to(&tempo_service::wire::encode(&request(1)), addr)
            .unwrap();
        let mut buf = [0u8; 512];
        let _ = client
            .recv_from(&mut buf)
            .expect("the valid request still served");
        let stats = front.stop();
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn admission_tier_shaves_a_burst() {
        let options = ServeOptions {
            threads: 1,
            admission: Some((50.0, 5.0)),
        };
        let (front, client) = front(true, &options);
        let addr = front.local_addr();
        let frame = tempo_service::wire::encode(&request(1));
        for _ in 0..60 {
            client.send_to(&frame, addr).unwrap();
        }
        // Collect replies until the socket drains.
        let mut buf = [0u8; 512];
        let mut answered = 0u64;
        while client.recv_from(&mut buf).is_ok() {
            answered += 1;
        }
        let stats = front.stop();
        assert_eq!(stats.served, answered);
        assert!(stats.rejected > 0, "the burst must overflow the bucket");
        assert_eq!(stats.served + stats.rejected, 60);
        assert!(
            stats.served >= 5,
            "the burst allowance admits at least the bucket"
        );
    }

    #[test]
    fn four_threads_share_one_socket() {
        let options = ServeOptions {
            threads: 4,
            admission: None,
        };
        let (front, client) = front(true, &options);
        let addr = front.local_addr();
        let frame = tempo_service::wire::encode(&request(3));
        let total = 200u64;
        let mut buf = [0u8; 512];
        let mut answered = 0u64;
        for _ in 0..total {
            client.send_to(&frame, addr).unwrap();
            if client.recv_from(&mut buf).is_ok() {
                answered += 1;
            }
        }
        let stats = front.stop();
        assert_eq!(stats.served, answered);
        // Closed loop: every request is answered (UDP on loopback with
        // one frame in flight does not drop).
        assert_eq!(answered, total);
    }
}
