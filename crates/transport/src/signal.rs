//! Minimal SIGTERM/SIGINT latching, with no signal-handling crate.
//!
//! `tempod` needs exactly one bit from the OS: "someone asked this
//! process to stop". The handler sets an atomic flag that the runtime
//! loop polls between socket timeouts, then the loop exits normally,
//! the store is flushed, and the socket is closed — the §5 distinction
//! between a *graceful* departure (state persisted at a known instant)
//! and a crash (state as of the last reset only).
//!
//! This module is the crate's single `unsafe` island: registering a
//! handler via the C `signal(2)` entry point that `std` already links.
//! The handler body is async-signal-safe — one relaxed atomic store.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install(signum: i32) {
        // SAFETY: `signal` is the C standard library's handler
        // registration; the handler only performs an atomic store,
        // which is async-signal-safe.
        unsafe {
            signal(signum, on_signal as *const () as usize);
        }
    }
}

/// Latches SIGTERM and SIGINT into [`shutdown_requested`]. Idempotent.
pub fn install() {
    ffi::install(SIGTERM);
    ffi::install(SIGINT);
}

/// Whether a shutdown signal (or [`request_shutdown`]) has been seen.
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Requests shutdown from inside the process — what a signal does,
/// minus the kernel. Lets tests and embedders drive the graceful path.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the latch. Tests only; a real `tempod` never un-asks to die.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_set_and_reset() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
