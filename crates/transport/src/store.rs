//! Durable stable storage: the file-backed [`StableStore`] that lets a
//! SIGKILLed `tempod` rehydrate `(r_i, ε_i)` on relaunch.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use tempo_core::{Duration, Timestamp};
use tempo_service::{PersistedState, StableStore};

/// A [`StableStore`] persisting to a single file.
///
/// Writes are atomic in the crash sense: the state is written to a
/// sibling temporary file, fsynced, then renamed over the target, so
/// a crash at any instant leaves either the old record or the new one
/// — never a torn write. The format is a single line of three
/// hex-encoded IEEE-754 bit patterns (`reset_clock inherited_error
/// reset_at`, all in seconds), which round-trips the `f64`-backed
/// [`Timestamp`]/[`Duration`] exactly.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
    /// Last state written or loaded, so `load` needs no re-read and
    /// `flush` can re-persist after a wipe-less shutdown.
    cached: Option<PersistedState>,
}

impl FileStore {
    /// Opens (or prepares to create) the store at `path`, reading any
    /// surviving record — the durable-restart path.
    ///
    /// # Errors
    ///
    /// Fails if the file exists but cannot be read or parsed; a
    /// missing file is simply an empty store.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let cached = match File::open(&path) {
            Ok(mut file) => {
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                Some(parse_record(&text).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    )
                })?)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        Ok(FileStore { path, cached })
    }

    /// The backing file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_record(&self, state: PersistedState) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(encode_record(state).as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &self.path)?;
        // Persist the rename itself where the platform allows
        // directory fsync; failure here is not a torn write.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

fn encode_record(state: PersistedState) -> String {
    format!(
        "{:016x} {:016x} {:016x}\n",
        state.reset_clock.as_secs().to_bits(),
        state.inherited_error.as_secs().to_bits(),
        state.reset_at.as_secs().to_bits(),
    )
}

fn parse_record(text: &str) -> Result<PersistedState, String> {
    let mut fields = text.split_whitespace().map(|word| {
        u64::from_str_radix(word, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad hex field `{word}`"))
    });
    let mut next = |name: &str| {
        fields
            .next()
            .ok_or_else(|| format!("missing field `{name}`"))?
            .and_then(|v| {
                if v.is_finite() {
                    Ok(v)
                } else {
                    Err(format!("field `{name}` is not finite"))
                }
            })
    };
    let reset_clock = next("reset_clock")?;
    let inherited_error = next("inherited_error")?;
    let reset_at = next("reset_at")?;
    Ok(PersistedState {
        reset_clock: Timestamp::from_secs(reset_clock),
        inherited_error: Duration::from_secs(inherited_error),
        reset_at: Timestamp::from_secs(reset_at),
    })
}

impl StableStore for FileStore {
    fn persist(&mut self, state: PersistedState) {
        // StableStore is infallible by contract (the simulator's
        // stores cannot fail); a disk error here degrades durability,
        // not correctness, so it is reported and survived — the server
        // keeps running on its in-memory state.
        if let Err(e) = self.write_record(state) {
            eprintln!(
                "tempo-transport: failed to persist state to {}: {e}",
                self.path.display()
            );
        }
        self.cached = Some(state);
    }

    fn load(&self) -> Option<PersistedState> {
        self.cached
    }

    fn wipe(&mut self) {
        let _ = fs::remove_file(&self.path);
        self.cached = None;
    }

    fn flush(&mut self) {
        // persist() already fsyncs, but a flush after a wipe-less run
        // re-writes the record in case the medium ate it (and is the
        // graceful-shutdown hook tempod relies on).
        if let Some(state) = self.cached {
            if let Err(e) = self.write_record(state) {
                eprintln!(
                    "tempo-transport: failed to flush state to {}: {e}",
                    self.path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(r: f64, eps: f64, at: f64) -> PersistedState {
        PersistedState {
            reset_clock: Timestamp::from_secs(r),
            inherited_error: Duration::from_secs(eps),
            reset_at: Timestamp::from_secs(at),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tempo-filestore-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        let written = state(123.456789, 0.001234, 123.5);
        {
            let mut store = FileStore::open(&path).unwrap();
            assert_eq!(store.load(), None);
            store.persist(written);
        }
        let reopened = FileStore::open(&path).unwrap();
        assert_eq!(reopened.load(), Some(written));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn exact_bits_survive_even_awkward_values() {
        let path = temp_path("bits");
        // A value with no short decimal representation.
        let written = state(1.0 / 3.0, f64::MIN_POSITIVE, 1e9 + 1.0 / 7.0);
        {
            let mut store = FileStore::open(&path).unwrap();
            store.persist(written);
        }
        assert_eq!(FileStore::open(&path).unwrap().load(), Some(written));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn persist_overwrites() {
        let path = temp_path("overwrite");
        let mut store = FileStore::open(&path).unwrap();
        store.persist(state(1.0, 0.5, 1.0));
        store.persist(state(2.0, 0.25, 2.0));
        assert_eq!(store.load(), Some(state(2.0, 0.25, 2.0)));
        assert_eq!(
            FileStore::open(&path).unwrap().load(),
            Some(state(2.0, 0.25, 2.0))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wipe_is_durable_amnesia() {
        let path = temp_path("wipe");
        let mut store = FileStore::open(&path).unwrap();
        store.persist(state(1.0, 0.5, 1.0));
        store.wipe();
        assert_eq!(store.load(), None);
        assert_eq!(FileStore::open(&path).unwrap().load(), None);
    }

    #[test]
    fn corrupt_record_is_an_error_not_a_panic() {
        let path = temp_path("corrupt");
        fs::write(&path, "not hex at all\n").unwrap();
        assert!(FileStore::open(&path).is_err());
        fs::write(&path, "deadbeef\n").unwrap();
        assert!(FileStore::open(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flush_rewrites_a_lost_file() {
        let path = temp_path("flush");
        let mut store = FileStore::open(&path).unwrap();
        store.persist(state(3.0, 0.1, 3.0));
        fs::remove_file(&path).unwrap();
        store.flush();
        assert_eq!(
            FileStore::open(&path).unwrap().load(),
            Some(state(3.0, 0.1, 3.0))
        );
        let _ = fs::remove_file(&path);
    }
}
