//! Durable stable storage: the file-backed [`StableStore`] that lets a
//! SIGKILLed `tempod` rehydrate `(r_i, ε_i)` on relaunch.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use tempo_core::{Duration, Timestamp};
use tempo_service::{ClusterState, PersistedState, StableStore};

/// A [`StableStore`] persisting to a single file.
///
/// Writes are atomic in the crash sense: the state is written to a
/// sibling temporary file, fsynced, then renamed over the target, so
/// a crash at any instant leaves either the old record or the new one
/// — never a torn write. A stale `.tmp` left by a crash *between* the
/// fsync and the rename is ignored and cleaned up on the next open:
/// only the renamed target is ever trusted.
///
/// The format is a single line of six hex fields:
/// `reset_clock inherited_error reset_at view high_water flags`. The
/// first three are IEEE-754 bit patterns (seconds) round-tripping the
/// `f64`-backed [`Timestamp`]/[`Duration`] exactly; `view` and
/// `high_water` are the cluster record's integers; `flags` bit 0 says
/// the base triple is present, bit 1 the cluster pair. Legacy
/// three-field files (pre-cluster) parse as a base-only record.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
    /// Last state written or loaded, so `load` needs no re-read and
    /// `flush` can re-persist after a wipe-less shutdown.
    cached: Option<PersistedState>,
    /// Last cluster record written or loaded.
    cached_cluster: Option<ClusterState>,
}

const FLAG_BASE: u64 = 1;
const FLAG_CLUSTER: u64 = 2;

impl FileStore {
    /// Opens (or prepares to create) the store at `path`, reading any
    /// surviving record — the durable-restart path. A stale sibling
    /// `.tmp` (a crash mid-persist) is removed without being read.
    ///
    /// # Errors
    ///
    /// Fails if the file exists but cannot be read or parsed; a
    /// missing file is simply an empty store.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        // A crash between writing the temporary and renaming it leaves
        // a `.tmp` of unknown integrity (possibly torn: the data fsync
        // may never have happened). It is never a committed record, so
        // it must not be trusted — discard it before reading the real
        // file so a later persist cannot collide with it either.
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            let _ = fs::remove_file(&tmp);
        }
        let (cached, cached_cluster) = match File::open(&path) {
            Ok(mut file) => {
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                parse_record(&text).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    )
                })?
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (None, None),
            Err(e) => return Err(e),
        };
        Ok(FileStore {
            path,
            cached,
            cached_cluster,
        })
    }

    /// The backing file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_record(&self) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(encode_record(self.cached, self.cached_cluster).as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &self.path)?;
        // Persist the rename itself where the platform allows
        // directory fsync; failure here is not a torn write.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn persist_or_report(&self, what: &str) {
        // StableStore is infallible by contract (the simulator's
        // stores cannot fail); a disk error here degrades durability,
        // not correctness, so it is reported and survived — the server
        // keeps running on its in-memory state.
        if let Err(e) = self.write_record() {
            eprintln!(
                "tempo-transport: failed to {what} state to {}: {e}",
                self.path.display()
            );
        }
    }
}

fn encode_record(base: Option<PersistedState>, cluster: Option<ClusterState>) -> String {
    let b = base.unwrap_or(PersistedState {
        reset_clock: Timestamp::from_secs(0.0),
        inherited_error: Duration::from_secs(0.0),
        reset_at: Timestamp::from_secs(0.0),
    });
    let c = cluster.unwrap_or_default();
    let flags = u64::from(base.is_some()) * FLAG_BASE + u64::from(cluster.is_some()) * FLAG_CLUSTER;
    format!(
        "{:016x} {:016x} {:016x} {:016x} {:016x} {:02x}\n",
        b.reset_clock.as_secs().to_bits(),
        b.inherited_error.as_secs().to_bits(),
        b.reset_at.as_secs().to_bits(),
        c.view,
        c.high_water,
        flags,
    )
}

type ParsedRecord = (Option<PersistedState>, Option<ClusterState>);

fn parse_record(text: &str) -> Result<ParsedRecord, String> {
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() != 3 && words.len() != 6 {
        return Err(format!("expected 3 or 6 fields, found {}", words.len()));
    }
    let raw = |idx: usize, name: &str| {
        u64::from_str_radix(words[idx], 16).map_err(|_| format!("bad hex field `{name}`"))
    };
    let secs = |idx: usize, name: &str| {
        raw(idx, name).and_then(|bits| {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("field `{name}` is not finite"))
            }
        })
    };
    let flags = if words.len() == 3 {
        FLAG_BASE
    } else {
        raw(5, "flags")?
    };
    let base = if flags & FLAG_BASE != 0 {
        Some(PersistedState {
            reset_clock: Timestamp::from_secs(secs(0, "reset_clock")?),
            inherited_error: Duration::from_secs(secs(1, "inherited_error")?),
            reset_at: Timestamp::from_secs(secs(2, "reset_at")?),
        })
    } else {
        None
    };
    let cluster = if words.len() == 6 && flags & FLAG_CLUSTER != 0 {
        Some(ClusterState {
            view: raw(3, "view")?,
            high_water: raw(4, "high_water")?,
        })
    } else {
        None
    };
    Ok((base, cluster))
}

impl StableStore for FileStore {
    fn persist(&mut self, state: PersistedState) {
        self.cached = Some(state);
        self.persist_or_report("persist");
    }

    fn load(&self) -> Option<PersistedState> {
        self.cached
    }

    fn wipe(&mut self) {
        let _ = fs::remove_file(&self.path);
        self.cached = None;
        self.cached_cluster = None;
    }

    fn flush(&mut self) {
        // persist() already fsyncs, but a flush after a wipe-less run
        // re-writes the record in case the medium ate it (and is the
        // graceful-shutdown hook tempod relies on).
        if self.cached.is_some() || self.cached_cluster.is_some() {
            self.persist_or_report("flush");
        }
    }

    fn persist_cluster(&mut self, state: ClusterState) {
        self.cached_cluster = Some(state);
        self.persist_or_report("persist cluster");
    }

    fn load_cluster(&self) -> Option<ClusterState> {
        self.cached_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(r: f64, eps: f64, at: f64) -> PersistedState {
        PersistedState {
            reset_clock: Timestamp::from_secs(r),
            inherited_error: Duration::from_secs(eps),
            reset_at: Timestamp::from_secs(at),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tempo-filestore-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        let written = state(123.456789, 0.001234, 123.5);
        {
            let mut store = FileStore::open(&path).unwrap();
            assert_eq!(store.load(), None);
            store.persist(written);
        }
        let reopened = FileStore::open(&path).unwrap();
        assert_eq!(reopened.load(), Some(written));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn exact_bits_survive_even_awkward_values() {
        let path = temp_path("bits");
        // A value with no short decimal representation.
        let written = state(1.0 / 3.0, f64::MIN_POSITIVE, 1e9 + 1.0 / 7.0);
        {
            let mut store = FileStore::open(&path).unwrap();
            store.persist(written);
        }
        assert_eq!(FileStore::open(&path).unwrap().load(), Some(written));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn persist_overwrites() {
        let path = temp_path("overwrite");
        let mut store = FileStore::open(&path).unwrap();
        store.persist(state(1.0, 0.5, 1.0));
        store.persist(state(2.0, 0.25, 2.0));
        assert_eq!(store.load(), Some(state(2.0, 0.25, 2.0)));
        assert_eq!(
            FileStore::open(&path).unwrap().load(),
            Some(state(2.0, 0.25, 2.0))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wipe_is_durable_amnesia() {
        let path = temp_path("wipe");
        let mut store = FileStore::open(&path).unwrap();
        store.persist(state(1.0, 0.5, 1.0));
        store.wipe();
        assert_eq!(store.load(), None);
        assert_eq!(FileStore::open(&path).unwrap().load(), None);
    }

    #[test]
    fn corrupt_record_is_an_error_not_a_panic() {
        let path = temp_path("corrupt");
        fs::write(&path, "not hex at all\n").unwrap();
        assert!(FileStore::open(&path).is_err());
        fs::write(&path, "deadbeef\n").unwrap();
        assert!(FileStore::open(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flush_rewrites_a_lost_file() {
        let path = temp_path("flush");
        let mut store = FileStore::open(&path).unwrap();
        store.persist(state(3.0, 0.1, 3.0));
        fs::remove_file(&path).unwrap();
        store.flush();
        assert_eq!(
            FileStore::open(&path).unwrap().load(),
            Some(state(3.0, 0.1, 3.0))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn cluster_record_round_trips_across_reopen() {
        let path = temp_path("cluster");
        let cs = ClusterState {
            view: 7,
            high_water: 12_500_001,
        };
        {
            let mut store = FileStore::open(&path).unwrap();
            assert_eq!(store.load_cluster(), None);
            store.persist_cluster(cs);
        }
        let reopened = FileStore::open(&path).unwrap();
        assert_eq!(reopened.load_cluster(), Some(cs));
        // No base record was ever written; the slot stays empty.
        assert_eq!(reopened.load(), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn base_and_cluster_records_coexist() {
        let path = temp_path("both");
        let base = state(5.0, 0.02, 5.001);
        let cs = ClusterState {
            view: 2,
            high_water: 99,
        };
        {
            let mut store = FileStore::open(&path).unwrap();
            store.persist(base);
            store.persist_cluster(cs);
            // Re-persisting one side must not lose the other.
            store.persist(state(6.0, 0.01, 6.0));
        }
        let reopened = FileStore::open(&path).unwrap();
        assert_eq!(reopened.load(), Some(state(6.0, 0.01, 6.0)));
        assert_eq!(reopened.load_cluster(), Some(cs));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn legacy_three_field_file_parses_as_base_only() {
        let path = temp_path("legacy");
        let base = state(123.456789, 0.001234, 123.5);
        fs::write(
            &path,
            format!(
                "{:016x} {:016x} {:016x}\n",
                base.reset_clock.as_secs().to_bits(),
                base.inherited_error.as_secs().to_bits(),
                base.reset_at.as_secs().to_bits(),
            ),
        )
        .unwrap();
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.load(), Some(base));
        assert_eq!(store.load_cluster(), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn stale_tmp_is_ignored_and_cleaned_up() {
        // A crash mid-persist — after writing the temporary but before
        // the rename — leaves a `.tmp` of unknown integrity next to the
        // last committed record. Rehydration must trust only the
        // committed file and remove the leftover.
        let path = temp_path("staletmp");
        let committed = state(10.0, 0.5, 10.0);
        {
            let mut store = FileStore::open(&path).unwrap();
            store.persist(committed);
        }
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, "0123456789abcdef 0123").unwrap(); // torn write
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.load(), Some(committed), "committed record lost");
        assert!(!tmp.exists(), "stale .tmp not cleaned up");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn orphan_tmp_without_committed_record_is_an_empty_store() {
        // A crash during the *first* persist: no committed file exists
        // at all, only the suspect `.tmp`. The store must come up
        // empty (amnesia, handled by the bootstrap path), not adopt
        // the torn bytes.
        let path = temp_path("orphantmp");
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, "deadbeef").unwrap();
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.load(), None);
        assert_eq!(store.load_cluster(), None);
        assert!(!tmp.exists(), "orphan .tmp not cleaned up");
        // And the next persist works normally.
        let mut store = store;
        store.persist(state(1.0, 0.1, 1.0));
        assert_eq!(
            FileStore::open(&path).unwrap().load(),
            Some(state(1.0, 0.1, 1.0))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_field_count_is_an_error() {
        let path = temp_path("fields");
        fs::write(&path, "0 0 0 0\n").unwrap();
        assert!(FileStore::open(&path).is_err());
        let _ = fs::remove_file(&path);
    }
}
