//! A blocking UDP client for the time service: ask every server,
//! time the round trip on the local monotonic clock, and return
//! rtt-adjusted readings — the client half of rule MM-1 over a real
//! network.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration as StdDuration, Instant};

use tempo_cluster::ClusterMsg;
use tempo_core::{Duration, TimeEstimate};
use tempo_service::wire::{decode, decode_cluster, encode, encode_cluster};
use tempo_service::Message;
use tempo_telemetry::RefusalCause;

/// One server's answer to a query round.
#[derive(Debug, Clone, Copy)]
pub struct ServerReading {
    /// The answering server's address.
    pub from: SocketAddr,
    /// The raw `⟨C_j, E_j⟩` as decoded off the wire.
    pub estimate: TimeEstimate,
    /// Local monotonic round trip, request out to reply in.
    pub rtt: StdDuration,
    /// Local monotonic instant the reply arrived, relative to the
    /// round's start; lets readings taken milliseconds apart be
    /// normalised to a common instant.
    pub received_at: StdDuration,
}

impl ServerReading {
    /// The reading adjusted for transmission, per the paper's §2: the
    /// reply aged by half the round trip, the error widened by the
    /// same half — the interval that contains true time if the server
    /// was correct.
    #[must_use]
    pub fn adjusted(&self) -> TimeEstimate {
        let half = Duration::from_secs(self.rtt.as_secs_f64() / 2.0);
        TimeEstimate::new(self.estimate.time() + half, self.estimate.error() + half)
    }

    /// [`ServerReading::adjusted`], further extrapolated to local
    /// instant `at` (same monotonic base as
    /// [`ServerReading::received_at`]). No drift term is added; over
    /// the sub-second spans a query round lasts, drift is far below
    /// the rtt uncertainty already included.
    #[must_use]
    pub fn adjusted_at(&self, at: StdDuration) -> TimeEstimate {
        let adjusted = self.adjusted();
        let age = Duration::from_secs(at.as_secs_f64() - self.received_at.as_secs_f64());
        TimeEstimate::new(adjusted.time() + age, adjusted.error())
    }
}

/// The outcome of one cluster query.
#[derive(Debug, Clone)]
pub struct ClusterReading {
    /// Readings from servers that answered with an estimate.
    pub readings: Vec<ServerReading>,
    /// Servers that answered "booting, no trustworthy interval yet".
    pub uninitialized: Vec<SocketAddr>,
}

/// A blocking client querying a fixed set of servers.
#[derive(Debug)]
pub struct UdpTimeClient {
    socket: UdpSocket,
    servers: Vec<SocketAddr>,
    next_request_id: u64,
    timeout: StdDuration,
}

impl UdpTimeClient {
    /// Binds an ephemeral local socket aimed at `servers`.
    ///
    /// # Errors
    ///
    /// Fails if the local socket cannot be bound.
    pub fn new(servers: Vec<SocketAddr>, timeout: StdDuration) -> io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        Ok(UdpTimeClient {
            socket,
            servers,
            next_request_id: 1,
            timeout,
        })
    }

    /// Sends a `TimeRequest` to every server and collects replies
    /// until the timeout lapses or every server has answered.
    /// Malformed or stray datagrams are ignored, not errors.
    ///
    /// # Errors
    ///
    /// Fails only on local socket errors; unreachable servers simply
    /// produce no reading.
    pub fn query(&mut self) -> io::Result<ClusterReading> {
        let round_start = Instant::now();
        // One id per server so a straggler from server A cannot be
        // booked against server B's round trip.
        let mut pending: Vec<(u64, SocketAddr, Instant)> = Vec::new();
        for &server in &self.servers {
            let request_id = self.next_request_id;
            self.next_request_id += 1;
            let frame = encode(&Message::TimeRequest {
                request_id,
                attempt: 0,
            });
            let sent_at = Instant::now();
            self.socket.send_to(&frame, server)?;
            pending.push((request_id, server, sent_at));
        }
        let mut readings = Vec::new();
        let mut uninitialized = Vec::new();
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 512];
        while !pending.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.socket.set_read_timeout(Some(deadline - now))?;
            let (len, from) = match self.socket.recv_from(&mut buf) {
                Ok(hit) => hit,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            };
            let received = Instant::now();
            let Ok(msg) = decode(&buf[..len]) else {
                continue;
            };
            let (request_id, estimate) = match msg {
                Message::TimeReply {
                    request_id,
                    estimate,
                    ..
                } => (request_id, Some(estimate)),
                Message::Uninitialized { request_id } => (request_id, None),
                Message::TimeRequest { .. } => continue,
            };
            let Some(slot) = pending
                .iter()
                .position(|&(id, server, _)| id == request_id && server == from)
            else {
                continue;
            };
            let (_, server, sent_at) = pending.swap_remove(slot);
            match estimate {
                Some(estimate) => readings.push(ServerReading {
                    from: server,
                    estimate,
                    rtt: received - sent_at,
                    received_at: received - round_start,
                }),
                None => uninitialized.push(server),
            }
        }
        Ok(ClusterReading {
            readings,
            uninitialized,
        })
    }

    /// The servers this client queries.
    #[must_use]
    pub fn servers(&self) -> &[SocketAddr] {
        &self.servers
    }
}

/// The outcome of one cluster-timestamp request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsOutcome {
    /// A timestamp was issued (released after quorum replication).
    Issued {
        /// The strictly monotonic cluster timestamp, µs ticks.
        timestamp: u64,
        /// The view it was issued under.
        view: u64,
    },
    /// Every attempt was answered with a refusal — the cluster is
    /// degraded (no lease, no quorum, booting) and said so rather
    /// than risk a regression.
    Refused {
        /// The refusing replica's view on the last attempt.
        view: u64,
        /// The last refusal's cause.
        cause: RefusalCause,
    },
    /// Nobody answered within the attempt budget.
    TimedOut,
}

impl TsOutcome {
    /// The issued timestamp, if one was.
    #[must_use]
    pub fn timestamp(&self) -> Option<u64> {
        match self {
            TsOutcome::Issued { timestamp, .. } => Some(*timestamp),
            _ => None,
        }
    }
}

/// What one attempt at one replica produced.
enum Attempt {
    Reply(TsOutcome),
    Redirect(usize),
    Refusal(u64, RefusalCause),
    Silence,
}

/// A blocking client for the cluster-time service: requests monotonic
/// timestamps from the believed primary, following redirects and
/// rotating through the replica set on silence — the real-socket twin
/// of the simulator's `AuditClient`.
#[derive(Debug)]
pub struct UdpClusterClient {
    socket: UdpSocket,
    replicas: Vec<SocketAddr>,
    believed_primary: usize,
    next_request_id: u64,
    timeout: StdDuration,
}

impl UdpClusterClient {
    /// Binds an ephemeral local socket aimed at `replicas` (indexed in
    /// node-id order, so redirects can name their target). `timeout`
    /// bounds each attempt, not the whole request.
    ///
    /// # Errors
    ///
    /// Fails if the local socket cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<SocketAddr>, timeout: StdDuration) -> io::Result<Self> {
        assert!(!replicas.is_empty(), "need at least one replica");
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        Ok(UdpClusterClient {
            socket,
            replicas,
            believed_primary: 0,
            next_request_id: 1,
            timeout,
        })
    }

    /// Requests one cluster timestamp: send to the believed primary,
    /// follow redirects, rotate on silence, and return the first
    /// reply — or the last refusal once the attempt budget (three
    /// laps of the replica set) runs out.
    ///
    /// # Errors
    ///
    /// Fails only on local socket errors; unreachable or refusing
    /// replicas are reported through [`TsOutcome`].
    pub fn request(&mut self) -> io::Result<TsOutcome> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let mut last_refusal = None;
        let budget = self.replicas.len() * 3;
        for attempt in 0..budget {
            let target = self.replicas[self.believed_primary];
            match self.one_attempt(request_id, attempt, target)? {
                Attempt::Reply(outcome) => return Ok(outcome),
                Attempt::Redirect(primary) => {
                    self.believed_primary = primary % self.replicas.len();
                }
                Attempt::Refusal(view, cause) => {
                    last_refusal = Some((view, cause));
                    // A refusal is authoritative for this replica right
                    // now; a lease or quorum may be moments away.
                    std::thread::sleep(self.timeout / 4);
                }
                Attempt::Silence => {
                    self.believed_primary = (self.believed_primary + 1) % self.replicas.len();
                }
            }
        }
        Ok(match last_refusal {
            Some((view, cause)) => TsOutcome::Refused { view, cause },
            None => TsOutcome::TimedOut,
        })
    }

    fn one_attempt(
        &mut self,
        request_id: u64,
        attempt: usize,
        target: SocketAddr,
    ) -> io::Result<Attempt> {
        let msg = ClusterMsg::TsRequest {
            request_id,
            attempt: attempt.min(u8::MAX as usize) as u8,
        };
        self.socket
            .send_to(&encode_cluster(&msg.to_frame()), target)?;
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 512];
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(Attempt::Silence);
            }
            self.socket.set_read_timeout(Some(deadline - now))?;
            let (len, _) = match self.socket.recv_from(&mut buf) {
                Ok(hit) => hit,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Attempt::Silence);
                }
                Err(e) => return Err(e),
            };
            let Ok(frame) = decode_cluster(&buf[..len]) else {
                continue;
            };
            match ClusterMsg::from_frame(frame) {
                ClusterMsg::TsReply {
                    request_id: id,
                    view,
                    timestamp,
                } if id == request_id => {
                    self.believed_primary = (view as usize) % self.replicas.len();
                    return Ok(Attempt::Reply(TsOutcome::Issued { timestamp, view }));
                }
                ClusterMsg::TsRedirect {
                    request_id: id,
                    primary,
                    ..
                } if id == request_id => return Ok(Attempt::Redirect(primary)),
                ClusterMsg::TsRefused {
                    request_id: id,
                    view,
                    cause,
                } if id == request_id => return Ok(Attempt::Refusal(view, cause)),
                // Stale replies to earlier requests, base-protocol
                // traffic, anything else: ignore and keep waiting.
                _ => {}
            }
        }
    }

    /// The replica this client currently believes is primary.
    #[must_use]
    pub fn believed_primary(&self) -> usize {
        self.believed_primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_core::Timestamp;

    #[test]
    fn query_collects_replies_and_refusals() {
        // Hand-rolled "servers": raw sockets that answer one request.
        let server_a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let server_b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addrs = vec![
            server_a.local_addr().unwrap(),
            server_b.local_addr().unwrap(),
        ];
        let mut client = UdpTimeClient::new(addrs.clone(), StdDuration::from_secs(5)).unwrap();
        let answer = std::thread::spawn(move || {
            let mut buf = [0u8; 512];
            let (len, from) = server_a.recv_from(&mut buf).unwrap();
            let Ok(Message::TimeRequest { request_id, .. }) = decode(&buf[..len]) else {
                panic!("expected a request");
            };
            let reply = Message::TimeReply {
                request_id,
                received_at: Timestamp::from_secs(42.0),
                estimate: TimeEstimate::new(Timestamp::from_secs(42.0), Duration::from_millis(3.0)),
            };
            server_a.send_to(&encode(&reply), from).unwrap();
            let (len, from) = server_b.recv_from(&mut buf).unwrap();
            let Ok(Message::TimeRequest { request_id, .. }) = decode(&buf[..len]) else {
                panic!("expected a request");
            };
            server_b
                .send_to(&encode(&Message::Uninitialized { request_id }), from)
                .unwrap();
        });
        let reading = client.query().unwrap();
        answer.join().unwrap();
        assert_eq!(reading.readings.len(), 1);
        assert_eq!(reading.uninitialized, vec![addrs[1]]);
        let r = reading.readings[0];
        assert_eq!(r.from, addrs[0]);
        assert_eq!(r.estimate.time(), Timestamp::from_secs(42.0));
        // Adjustment ages the reading and widens the error by rtt/2.
        let adjusted = r.adjusted();
        assert!(adjusted.time() >= r.estimate.time());
        assert!(adjusted.error() >= r.estimate.error());
    }

    #[test]
    fn query_times_out_on_silence() {
        let silent = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut client = UdpTimeClient::new(
            vec![silent.local_addr().unwrap()],
            StdDuration::from_millis(50),
        )
        .unwrap();
        let reading = client.query().unwrap();
        assert!(reading.readings.is_empty());
        assert!(reading.uninitialized.is_empty());
    }
}
