//! Algorithm **MM** — *minimization of the maximum error* (§3).
//!
//! Rule MM-2 of the paper: when server `S_i` receives a consistent reply
//! `⟨C_j, E_j⟩` with locally measured round-trip `ξ^i_j`, it evaluates
//!
//! ```text
//! E_j + (1 + δ_i) · ξ^i_j  ≤  E_i
//! ```
//!
//! and, if the predicate holds, resets: `ε_i ← E_j + (1+δ_i)ξ^i_j`,
//! `C_i ← C_j`, `r_i ← C_j`. Inconsistent replies are ignored (and
//! surfaced to the caller, since §3's recovery algorithm keys off them).
//!
//! MM is a *selection* function: the resulting clock value always comes
//! from a single server, so the service can never be more accurate than
//! its most accurate clock — and, because different servers may select
//! different sources, its synchronization is limited by consistency
//! (Theorem 3) rather than by the round-trip bound.

use crate::bounds::mm2_adjusted_error;
use crate::sync::{Reset, TimedReply};
use crate::time::DriftRate;
use crate::TimeEstimate;

/// The outcome of evaluating rule MM-2 against a single reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MmOutcome {
    /// The reply had a smaller adjusted error; adopt it.
    Reset(Reset),
    /// The reply was consistent but not better; keep the local clock.
    Keep,
    /// The reply's interval does not intersect ours: at least one of the
    /// two servers is incorrect. Rule MM-2 ignores the reply; §3's
    /// recovery algorithm reacts to it.
    Inconsistent,
}

impl MmOutcome {
    /// The reset, if this outcome is one.
    #[must_use]
    pub fn reset(&self) -> Option<Reset> {
        match self {
            MmOutcome::Reset(r) => Some(*r),
            MmOutcome::Keep | MmOutcome::Inconsistent => None,
        }
    }
}

/// Evaluates rule MM-2 for one reply.
///
/// * `own` — the local estimate `⟨C_i, E_i⟩` *at the moment the reply is
///   received* (per rule MM-1 the error has been growing while the
///   request was in flight).
/// * `delta` — the local drift bound `δ_i`.
/// * `reply` — the remote estimate with its locally measured round-trip.
///
/// ```
/// use tempo_core::{TimeEstimate, Timestamp, Duration, DriftRate};
/// use tempo_core::sync::TimedReply;
/// use tempo_core::sync::mm::{mm_decide, MmOutcome};
///
/// let own = TimeEstimate::new(Timestamp::from_secs(100.0), Duration::from_secs(1.0));
/// let better = TimedReply::new(
///     TimeEstimate::new(Timestamp::from_secs(100.1), Duration::from_secs(0.2)),
///     Duration::from_secs(0.05),
/// );
/// match mm_decide(&own, DriftRate::new(1e-4), &better) {
///     MmOutcome::Reset(r) => assert_eq!(r.new_clock, Timestamp::from_secs(100.1)),
///     _ => unreachable!("the reply's adjusted error beats E_i"),
/// }
/// ```
#[must_use]
pub fn mm_decide(own: &TimeEstimate, delta: DriftRate, reply: &TimedReply) -> MmOutcome {
    if !own.is_consistent_with(&reply.estimate) {
        return MmOutcome::Inconsistent;
    }
    let adjusted = mm2_adjusted_error(reply.estimate.error(), reply.round_trip, delta);
    if adjusted <= own.error() {
        MmOutcome::Reset(Reset {
            new_clock: reply.estimate.time(),
            new_error: adjusted,
        })
    } else {
        MmOutcome::Keep
    }
}

/// The result of processing a whole round of replies with MM.
#[derive(Debug, Clone, PartialEq)]
pub struct MmRoundResult {
    /// The final reset, if any reply was adopted (the state after the
    /// last accepted reply).
    pub reset: Option<Reset>,
    /// Indices (into the reply slice) of replies that caused a reset.
    pub adopted: Vec<usize>,
    /// Indices of replies that were inconsistent with the then-current
    /// local estimate.
    pub inconsistent: Vec<usize>,
}

/// Processes an ordered round of replies the way the Theorem 2 proof
/// walks them: each reply is evaluated against the estimate resulting
/// from the previous accepted reply.
///
/// This helper assumes all replies are examined at (essentially) the same
/// instant, so it does not model local error growth *between* arrivals —
/// the protocol actor in `tempo-service` handles that by re-deriving
/// `own` per arrival. It exists for tests, experiments, and batch use.
#[must_use]
pub fn mm_round(own: &TimeEstimate, delta: DriftRate, replies: &[TimedReply]) -> MmRoundResult {
    let mut current = *own;
    let mut result = MmRoundResult {
        reset: None,
        adopted: Vec::new(),
        inconsistent: Vec::new(),
    };
    for (idx, reply) in replies.iter().enumerate() {
        match mm_decide(&current, delta, reply) {
            MmOutcome::Reset(reset) => {
                current = reset.as_estimate();
                result.reset = Some(reset);
                result.adopted.push(idx);
            }
            MmOutcome::Keep => {}
            MmOutcome::Inconsistent => result.inconsistent.push(idx),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, Timestamp};

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn est(c: f64, e: f64) -> TimeEstimate {
        TimeEstimate::new(ts(c), dur(e))
    }

    #[test]
    fn adopts_strictly_better_reply() {
        let own = est(100.0, 1.0);
        let reply = TimedReply::new(est(100.2, 0.3), dur(0.1));
        let delta = DriftRate::new(0.01);
        match mm_decide(&own, delta, &reply) {
            MmOutcome::Reset(r) => {
                assert_eq!(r.new_clock, ts(100.2));
                // ε ← E_j + (1+δ)ξ = 0.3 + 1.01·0.1
                assert!((r.new_error.as_secs() - 0.401).abs() < 1e-12);
            }
            other => panic!("expected reset, got {other:?}"),
        }
    }

    #[test]
    fn keeps_clock_when_reply_not_better() {
        let own = est(100.0, 0.2);
        let reply = TimedReply::new(est(100.1, 0.3), dur(0.0));
        assert_eq!(mm_decide(&own, DriftRate::ZERO, &reply), MmOutcome::Keep);
    }

    #[test]
    fn boundary_equal_adjusted_error_is_adopted() {
        // The predicate is ≤, so an exactly-equal adjusted error resets.
        let own = est(100.0, 0.5);
        let reply = TimedReply::new(est(100.0, 0.5), dur(0.0));
        assert!(matches!(
            mm_decide(&own, DriftRate::ZERO, &reply),
            MmOutcome::Reset(_)
        ));
    }

    #[test]
    fn round_trip_penalty_can_flip_decision() {
        let own = est(100.0, 0.5);
        // E_j = 0.45 looks better, but ξ = 0.1 pushes it past E_i.
        let reply = TimedReply::new(est(100.0, 0.45), dur(0.1));
        assert_eq!(mm_decide(&own, DriftRate::ZERO, &reply), MmOutcome::Keep);
        // With a fast network the same reply is adopted.
        let fast = TimedReply::new(est(100.0, 0.45), dur(0.01));
        assert!(matches!(
            mm_decide(&own, DriftRate::ZERO, &fast),
            MmOutcome::Reset(_)
        ));
    }

    #[test]
    fn inconsistent_reply_is_ignored() {
        let own = est(100.0, 0.1);
        // 3 seconds away with tiny errors: cannot both be correct.
        let reply = TimedReply::new(est(103.0, 0.1), dur(0.0));
        assert_eq!(
            mm_decide(&own, DriftRate::ZERO, &reply),
            MmOutcome::Inconsistent
        );
    }

    #[test]
    fn inconsistent_reply_never_resets_even_if_smaller_error() {
        let own = est(100.0, 0.1);
        let reply = TimedReply::new(est(103.0, 0.001), dur(0.0));
        assert_eq!(
            mm_decide(&own, DriftRate::ZERO, &reply),
            MmOutcome::Inconsistent
        );
    }

    #[test]
    fn self_reply_always_satisfies_predicate() {
        // The Theorem 2 proof's device: a self-reply has ξ = 0 and
        // E_j = E_i, so it satisfies MM-2 without changing anything.
        let own = est(42.0, 0.7);
        let outcome = mm_decide(&own, DriftRate::new(0.1), &TimedReply::self_reply(own));
        match outcome {
            MmOutcome::Reset(r) => {
                assert_eq!(r.new_clock, own.time());
                assert_eq!(r.new_error, own.error());
            }
            other => panic!("self-reply must satisfy MM-2, got {other:?}"),
        }
    }

    #[test]
    fn outcome_reset_accessor() {
        let own = est(0.0, 1.0);
        let reply = TimedReply::new(est(0.0, 0.1), dur(0.0));
        assert!(mm_decide(&own, DriftRate::ZERO, &reply).reset().is_some());
        assert!(MmOutcome::Keep.reset().is_none());
        assert!(MmOutcome::Inconsistent.reset().is_none());
    }

    #[test]
    fn round_adopts_progressively_better_replies() {
        let own = est(100.0, 1.0);
        let replies = vec![
            TimedReply::new(est(100.1, 0.5), dur(0.0)), // adopted
            TimedReply::new(est(100.2, 0.8), dur(0.0)), // worse than 0.5 → keep
            TimedReply::new(est(100.0, 0.2), dur(0.0)), // adopted
        ];
        let result = mm_round(&own, DriftRate::ZERO, &replies);
        assert_eq!(result.adopted, vec![0, 2]);
        assert!(result.inconsistent.is_empty());
        let reset = result.reset.unwrap();
        assert_eq!(reset.new_clock, ts(100.0));
        assert_eq!(reset.new_error, dur(0.2));
    }

    #[test]
    fn round_flags_inconsistent_replies() {
        let own = est(100.0, 0.1);
        let replies = vec![
            TimedReply::new(est(105.0, 0.1), dur(0.0)), // inconsistent
            TimedReply::new(est(100.05, 0.05), dur(0.0)), // adopted
        ];
        let result = mm_round(&own, DriftRate::ZERO, &replies);
        assert_eq!(result.inconsistent, vec![0]);
        assert_eq!(result.adopted, vec![1]);
    }

    #[test]
    fn round_with_no_replies_keeps_clock() {
        let own = est(1.0, 1.0);
        let result = mm_round(&own, DriftRate::ZERO, &[]);
        assert!(result.reset.is_none());
        assert!(result.adopted.is_empty());
    }

    #[test]
    fn consistency_is_judged_against_updated_estimate() {
        // After adopting a tight reply, a previously consistent reply may
        // become inconsistent with the tightened interval.
        let own = est(100.0, 3.0);
        let replies = vec![
            TimedReply::new(est(99.0, 0.1), dur(0.0)), // adopted, tight
            TimedReply::new(est(101.0, 0.5), dur(0.0)), // now inconsistent
        ];
        let result = mm_round(&own, DriftRate::ZERO, &replies);
        assert_eq!(result.adopted, vec![0]);
        assert_eq!(result.inconsistent, vec![1]);
    }
}
