//! Baseline synchronization functions from the prior work (§1.2).
//!
//! The paper positions MM and IM against three functions used by earlier
//! clock-synchronization algorithms:
//!
//! * **maximum** — Lamport's monotonicity-preserving rule
//!   ([Lamport 78]): adopt the fastest clock;
//! * **median** — used in fault-tolerant synchronization
//!   ([Lamport 82]);
//! * **mean** — likewise, averaging all clocks.
//!
//! These functions assume *accurate* clocks and carry no per-reply error
//! accounting, so they can silently go incorrect under drift — that is
//! exactly the comparison the `tempo-sim` ablation experiments (A2) run.
//! To let them participate in a service that still *reports* errors per
//! rule MM-1, each baseline here assigns a conservative inherited error
//! derived from the replies it used (documented per function). The error
//! bookkeeping is our addition; the clock-value rule is the cited one.

use crate::sync::{Reset, TimedReply};
use crate::time::{DriftRate, Duration};
use crate::TimeEstimate;

/// Which baseline synchronization function to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Adopt the maximum clock value among self and all replies
    /// ([Lamport 78]).
    LamportMax,
    /// Adopt the median clock value (lower median for even counts).
    Median,
    /// Adopt the mean clock value.
    Mean,
}

impl BaselineKind {
    /// All baselines, for iteration in experiments.
    pub const ALL: [BaselineKind; 3] = [
        BaselineKind::LamportMax,
        BaselineKind::Median,
        BaselineKind::Mean,
    ];

    /// A short human-readable name (`"max"`, `"median"`, `"mean"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::LamportMax => "max",
            BaselineKind::Median => "median",
            BaselineKind::Mean => "mean",
        }
    }
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies a baseline synchronization function over the local estimate
/// and a set of replies.
///
/// The local estimate always participates as a zero-round-trip
/// "self-reply", mirroring the treatment in [`crate::sync::mm`] /
/// [`crate::sync::im`]. Unlike MM, baselines never reject inconsistent
/// replies — the cited algorithms have no notion of consistency.
///
/// Error bookkeeping (our addition, so baselines can live inside a
/// MM-1-reporting server):
///
/// * `LamportMax` and `Median`: the inherited error of the *source whose
///   clock value was adopted*, plus its round-trip allowance.
/// * `Mean`: the mean of all adjusted errors (a mean of intervals is
///   centred on the mean of centres with the mean radius only if radii
///   align, so this can under-cover — which is the known weakness being
///   measured).
///
/// ```
/// use tempo_core::{TimeEstimate, Timestamp, Duration, DriftRate};
/// use tempo_core::sync::TimedReply;
/// use tempo_core::sync::baseline::{baseline_round, BaselineKind};
///
/// let own = TimeEstimate::new(Timestamp::from_secs(10.0), Duration::from_secs(0.5));
/// let replies = vec![TimedReply::new(
///     TimeEstimate::new(Timestamp::from_secs(12.0), Duration::from_secs(0.5)),
///     Duration::ZERO,
/// )];
/// let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::LamportMax);
/// assert_eq!(reset.new_clock, Timestamp::from_secs(12.0));
/// ```
#[must_use]
pub fn baseline_round(
    own: &TimeEstimate,
    delta: DriftRate,
    replies: &[TimedReply],
    kind: BaselineKind,
) -> Reset {
    // Participants: (clock value, adjusted error).
    let mut participants: Vec<(crate::Timestamp, Duration)> = Vec::with_capacity(replies.len() + 1);
    participants.push((own.time(), own.error()));
    for r in replies {
        participants.push((
            r.estimate.time(),
            r.estimate.error() + r.round_trip * delta.inflation(),
        ));
    }

    match kind {
        BaselineKind::LamportMax => {
            let &(clock, error) = participants
                .iter()
                .max_by_key(|(c, _)| *c)
                .expect("participants is non-empty");
            Reset {
                new_clock: clock,
                new_error: error,
            }
        }
        BaselineKind::Median => {
            participants.sort_by_key(|(c, _)| *c);
            let (clock, error) = participants[(participants.len() - 1) / 2];
            Reset {
                new_clock: clock,
                new_error: error,
            }
        }
        BaselineKind::Mean => {
            let n = participants.len() as f64;
            let mean_secs = participants.iter().map(|(c, _)| c.as_secs()).sum::<f64>() / n;
            let mean_error = participants.iter().map(|(_, e)| *e).sum::<Duration>() / n;
            Reset {
                new_clock: crate::Timestamp::from_secs(mean_secs),
                new_error: mean_error,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn est(c: f64, e: f64) -> TimeEstimate {
        TimeEstimate::new(ts(c), dur(e))
    }

    fn reply(c: f64, e: f64, rtt: f64) -> TimedReply {
        TimedReply::new(est(c, e), dur(rtt))
    }

    #[test]
    fn max_adopts_fastest_clock() {
        let own = est(10.0, 0.1);
        let replies = [reply(9.0, 0.2, 0.0), reply(12.0, 0.3, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::LamportMax);
        assert_eq!(reset.new_clock, ts(12.0));
        assert_eq!(reset.new_error, dur(0.3));
    }

    #[test]
    fn max_includes_own_clock() {
        let own = est(20.0, 0.1);
        let replies = [reply(9.0, 0.2, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::LamportMax);
        assert_eq!(reset.new_clock, ts(20.0));
        assert_eq!(reset.new_error, dur(0.1));
    }

    #[test]
    fn max_never_moves_clock_backwards() {
        // Monotonicity: the max over a set including own clock is ≥ own.
        let own = est(100.0, 0.5);
        let replies = [reply(95.0, 0.1, 0.0), reply(98.0, 0.1, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::LamportMax);
        assert!(reset.new_clock >= own.time());
    }

    #[test]
    fn median_odd_count() {
        let own = est(10.0, 0.1);
        let replies = [reply(30.0, 0.2, 0.0), reply(20.0, 0.3, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::Median);
        assert_eq!(reset.new_clock, ts(20.0));
        assert_eq!(reset.new_error, dur(0.3));
    }

    #[test]
    fn median_even_count_takes_lower_median() {
        let own = est(10.0, 0.1);
        let replies = [
            reply(20.0, 0.2, 0.0),
            reply(30.0, 0.3, 0.0),
            reply(40.0, 0.4, 0.0),
        ];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::Median);
        assert_eq!(reset.new_clock, ts(20.0));
    }

    #[test]
    fn median_tolerates_one_wild_clock() {
        let own = est(100.0, 0.1);
        let replies = [reply(100.2, 0.1, 0.0), reply(9999.0, 0.1, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::Median);
        assert_eq!(reset.new_clock, ts(100.2));
    }

    #[test]
    fn mean_averages_clocks_and_errors() {
        let own = est(10.0, 0.3);
        let replies = [reply(20.0, 0.6, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::Mean);
        assert_eq!(reset.new_clock, ts(15.0));
        assert!((reset.new_error.as_secs() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn mean_is_pulled_by_outliers() {
        // The known weakness: one wild clock drags the mean.
        let own = est(100.0, 0.1);
        let replies = [reply(100.0, 0.1, 0.0), reply(400.0, 0.1, 0.0)];
        let reset = baseline_round(&own, DriftRate::ZERO, &replies, BaselineKind::Mean);
        assert_eq!(reset.new_clock, ts(200.0));
    }

    #[test]
    fn round_trip_inflates_reply_errors() {
        let own = est(0.0, 10.0);
        let delta = DriftRate::new(0.5);
        let replies = [reply(5.0, 1.0, 2.0)];
        let reset = baseline_round(&own, delta, &replies, BaselineKind::LamportMax);
        // adopted error = 1.0 + 1.5·2.0 = 4.0
        assert_eq!(reset.new_error, dur(4.0));
    }

    #[test]
    fn no_replies_keeps_own_values() {
        let own = est(7.0, 0.7);
        for kind in BaselineKind::ALL {
            let reset = baseline_round(&own, DriftRate::ZERO, &[], kind);
            assert_eq!(reset.new_clock, ts(7.0), "{kind}");
            assert_eq!(reset.new_error, dur(0.7), "{kind}");
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(BaselineKind::LamportMax.name(), "max");
        assert_eq!(BaselineKind::Median.to_string(), "median");
        assert_eq!(BaselineKind::Mean.to_string(), "mean");
        assert_eq!(BaselineKind::ALL.len(), 3);
    }
}
