//! Synchronization functions.
//!
//! The paper characterises clock synchronization as each server `i`
//! independently computing `C_i(t) ← F(C_{i1}(t), …, C_{ik}(t))` over a
//! distributed set of data (§1.2). The *synchronization function* `F` is
//! what distinguishes the algorithms:
//!
//! * [`mm`] — pick the reply with the smallest maximum error (§3),
//! * [`im`] — intersect all reply intervals (§4),
//! * [`baseline`] — the maximum / median / mean functions from the prior
//!   work the paper compares against ([Lamport 78, 82]).
//!
//! All functions here are pure. They consume the server's own current
//! estimate `⟨C_i, E_i⟩`, its drift bound `δ_i`, and a set of
//! [`TimedReply`]s (a remote estimate plus the round-trip `ξ` measured on
//! the *local* clock), and return a [`Reset`] decision.

pub mod baseline;
pub mod im;
pub mod mm;

use std::fmt;

use crate::time::{Duration, Timestamp};
use crate::TimeEstimate;

/// A remote reply `⟨C_j, E_j⟩` paired with the round-trip delay `ξ^i_j`
/// measured on the requesting server's own clock `C_i`.
///
/// Measuring `ξ` locally (rather than in real time) is what introduces the
/// `(1 + δ_i)` inflation factors in rules MM-2 and IM-2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedReply {
    /// The remote server's reported estimate.
    pub estimate: TimeEstimate,
    /// The round-trip `ξ^i_j` as measured by the local clock.
    pub round_trip: Duration,
}

impl TimedReply {
    /// Pairs a reply with its locally measured round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `round_trip` is negative (clock readings between resets
    /// are monotonic, so a locally measured round-trip cannot be
    /// negative).
    #[must_use]
    pub fn new(estimate: TimeEstimate, round_trip: Duration) -> Self {
        assert!(
            !round_trip.is_negative(),
            "round-trip must be non-negative, got {round_trip}"
        );
        TimedReply {
            estimate,
            round_trip,
        }
    }

    /// A self-reply: the server answering its own request with zero
    /// delay. The Theorem 2 proof assumes every round contains one; it
    /// guarantees MM always has at least one acceptable reply and IM's
    /// intersection always includes the server's own interval.
    #[must_use]
    pub fn self_reply(own: TimeEstimate) -> Self {
        TimedReply {
            estimate: own,
            round_trip: Duration::ZERO,
        }
    }
}

impl fmt::Display for TimedReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (rtt {})", self.estimate, self.round_trip)
    }
}

/// The decision to reset the local clock.
///
/// Applying a reset means `C_i ← new_clock`, `ε_i ← new_error`,
/// `r_i ← new_clock` (rules MM-2 / IM-2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reset {
    /// The value the clock is set to.
    pub new_clock: Timestamp,
    /// The inherited error after the reset.
    pub new_error: Duration,
}

impl Reset {
    /// The estimate a server holds immediately after applying this reset.
    #[must_use]
    pub fn as_estimate(&self) -> TimeEstimate {
        TimeEstimate::new(self.new_clock, self.new_error)
    }
}

impl fmt::Display for Reset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reset to {} ± {}", self.new_clock, self.new_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_reply_construction() {
        let e = TimeEstimate::new(Timestamp::from_secs(1.0), Duration::from_secs(0.1));
        let r = TimedReply::new(e, Duration::from_secs(0.05));
        assert_eq!(r.estimate, e);
        assert_eq!(r.round_trip, Duration::from_secs(0.05));
    }

    #[test]
    #[should_panic(expected = "round-trip must be non-negative")]
    fn timed_reply_rejects_negative_rtt() {
        let e = TimeEstimate::new(Timestamp::from_secs(1.0), Duration::ZERO);
        let _ = TimedReply::new(e, Duration::from_secs(-0.01));
    }

    #[test]
    fn self_reply_has_zero_rtt() {
        let e = TimeEstimate::new(Timestamp::from_secs(1.0), Duration::from_secs(0.1));
        let r = TimedReply::self_reply(e);
        assert_eq!(r.round_trip, Duration::ZERO);
        assert_eq!(r.estimate, e);
    }

    #[test]
    fn reset_as_estimate() {
        let reset = Reset {
            new_clock: Timestamp::from_secs(5.0),
            new_error: Duration::from_secs(0.2),
        };
        let e = reset.as_estimate();
        assert_eq!(e.time(), Timestamp::from_secs(5.0));
        assert_eq!(e.error(), Duration::from_secs(0.2));
    }

    #[test]
    fn display_impls() {
        let e = TimeEstimate::new(Timestamp::from_secs(1.0), Duration::from_secs(0.1));
        assert!(TimedReply::self_reply(e).to_string().contains("rtt"));
        let reset = Reset {
            new_clock: Timestamp::from_secs(5.0),
            new_error: Duration::ZERO,
        };
        assert!(reset.to_string().starts_with("reset to"));
    }
}
