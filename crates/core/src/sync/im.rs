//! Algorithm **IM** — *intersection as a synchronization function* (§4).
//!
//! Rule IM-2 of the paper: transform each reply `⟨C_j, E_j⟩` into an
//! interval *relative to the local clock reading* `C_i`:
//!
//! ```text
//! T_j ← C_j − E_j − C_i
//! L_j ← C_j + E_j + (1 + δ_i)·ξ^i_j − C_i
//! ```
//!
//! (only the leading edge is widened by the round-trip allowance — while
//! the reply was in flight real time can only have advanced). Then with
//! `a = max T_j` and `b = min L_j` over all replies, if the intersection
//! `[a .. b]` is non-empty the server resets to its midpoint:
//! `ε_i ← (b−a)/2`, `C_i ← C_i + (a+b)/2`, `r_i ← C_i`.
//!
//! Because the adopted interval is *derived* rather than *selected*,
//! Theorem 6 guarantees it is never wider than the narrowest reply, and
//! Theorem 8 shows its expected width need not grow at all as the number
//! of servers grows — IM can synthesise a clock more precise than any
//! individual clock in the service.

use crate::bounds::im2_leading_allowance;
use crate::sync::{Reset, TimedReply};
use crate::time::{DriftRate, Duration};
use crate::TimeEstimate;

/// The outcome of an IM round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImOutcome {
    /// The intersection was non-empty; reset to its midpoint.
    Reset(Reset),
    /// The intersection (including the local interval) was empty — the
    /// service is inconsistent and rule IM-2 cannot produce a time.
    Inconsistent,
}

impl ImOutcome {
    /// The reset, if this outcome is one.
    #[must_use]
    pub fn reset(&self) -> Option<Reset> {
        match self {
            ImOutcome::Reset(r) => Some(*r),
            ImOutcome::Inconsistent => None,
        }
    }
}

/// The transformed relative interval `[T_j .. L_j]` of rule IM-2.
///
/// Offsets are relative to the local clock reading `C_i` at the moment of
/// evaluation; the local interval itself is `[-E_i .. +E_i]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeInterval {
    /// The trailing-edge offset `T_j = C_j − E_j − C_i`.
    pub trailing: Duration,
    /// The leading-edge offset `L_j = C_j + E_j + (1+δ_i)ξ^i_j − C_i`.
    pub leading: Duration,
}

impl RelativeInterval {
    /// Width of the relative interval (may be "negative" only in the
    /// sense that an empty intersection yields `leading < trailing`; for
    /// a single transformed reply `leading ≥ trailing` always holds).
    #[must_use]
    pub fn width(&self) -> Duration {
        self.leading - self.trailing
    }
}

/// Applies the IM-2 transform to one reply.
#[must_use]
pub fn im_transform(own: &TimeEstimate, delta: DriftRate, reply: &TimedReply) -> RelativeInterval {
    let offset = reply.estimate.time() - own.time();
    RelativeInterval {
        trailing: offset - reply.estimate.error(),
        leading: offset + reply.estimate.error() + im2_leading_allowance(reply.round_trip, delta),
    }
}

/// Runs one full IM round: intersects the local interval with every
/// transformed reply and resets to the midpoint of the intersection.
///
/// The local interval `[-E_i .. +E_i]` is always part of the
/// intersection, exactly as in the Theorem 5 proof (a server only moves
/// its clock *within* its own current interval). Callers therefore do not
/// need to add a self-reply.
///
/// ```
/// use tempo_core::{TimeEstimate, Timestamp, Duration, DriftRate};
/// use tempo_core::sync::TimedReply;
/// use tempo_core::sync::im::{im_round, ImOutcome};
///
/// let own = TimeEstimate::new(Timestamp::from_secs(50.0), Duration::from_secs(1.0));
/// let reply = TimedReply::new(
///     TimeEstimate::new(Timestamp::from_secs(50.8), Duration::from_secs(0.5)),
///     Duration::ZERO,
/// );
/// match im_round(&own, DriftRate::ZERO, &[reply]) {
///     ImOutcome::Reset(r) => {
///         // intersection is [50.3, 51.0] → midpoint 50.65, radius 0.35
///         assert!((r.new_clock.as_secs() - 50.65).abs() < 1e-9);
///         assert!((r.new_error.as_secs() - 0.35).abs() < 1e-9);
///     }
///     ImOutcome::Inconsistent => unreachable!(),
/// }
/// ```
#[must_use]
pub fn im_round(own: &TimeEstimate, delta: DriftRate, replies: &[TimedReply]) -> ImOutcome {
    // Start from the local interval [-E_i, +E_i].
    let mut a = -own.error();
    let mut b = own.error();
    for reply in replies {
        let rel = im_transform(own, delta, reply);
        a = a.max(rel.trailing);
        b = b.min(rel.leading);
    }
    // The paper states the condition as b > a; with closed intervals a
    // single shared point (b == a) is still a consistent — if degenerate —
    // intersection, matching the ≤ in the §2.3 consistency predicate.
    if b >= a {
        ImOutcome::Reset(Reset {
            new_clock: own.time() + (a + b).half(),
            new_error: (b - a).half(),
        })
    } else {
        ImOutcome::Inconsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn est(c: f64, e: f64) -> TimeEstimate {
        TimeEstimate::new(ts(c), dur(e))
    }

    fn reply(c: f64, e: f64, rtt: f64) -> TimedReply {
        TimedReply::new(est(c, e), dur(rtt))
    }

    #[test]
    fn transform_matches_rule_im2() {
        let own = est(100.0, 0.5);
        let delta = DriftRate::new(0.01);
        let r = reply(100.3, 0.2, 0.1);
        let rel = im_transform(&own, delta, &r);
        // T = 100.3 − 0.2 − 100.0 = 0.1
        assert!((rel.trailing.as_secs() - 0.1).abs() < 1e-12);
        // L = 100.3 + 0.2 + 1.01·0.1 − 100.0 = 0.601
        assert!((rel.leading.as_secs() - 0.601).abs() < 1e-12);
        assert!((rel.width().as_secs() - 0.501).abs() < 1e-12);
    }

    #[test]
    fn round_with_no_replies_recentres_on_own_interval() {
        let own = est(10.0, 0.5);
        match im_round(&own, DriftRate::ZERO, &[]) {
            ImOutcome::Reset(r) => {
                assert_eq!(r.new_clock, ts(10.0));
                assert_eq!(r.new_error, dur(0.5));
            }
            ImOutcome::Inconsistent => panic!("own interval alone is consistent"),
        }
    }

    #[test]
    fn intersection_shrinks_error_below_narrowest_input() {
        // Right side of Figure 2: offset intervals whose intersection is
        // narrower than either input.
        let own = est(100.0, 1.0); // [99, 101]
        let r = reply(101.5, 1.0, 0.0); // [100.5, 102.5]
        match im_round(&own, DriftRate::ZERO, &[r]) {
            ImOutcome::Reset(reset) => {
                // intersection [100.5, 101.0] → C = 100.75, E = 0.25
                assert_eq!(reset.new_clock, ts(100.75));
                assert_eq!(reset.new_error, dur(0.25));
                assert!(reset.new_error < own.error());
                assert!(reset.new_error < r.estimate.error());
            }
            ImOutcome::Inconsistent => panic!("intervals overlap"),
        }
    }

    #[test]
    fn subset_case_yields_inner_interval() {
        // Left side of Figure 2: the narrow interval lies inside the wide
        // one; the intersection is the narrow interval itself (plus the
        // rtt widening).
        let own = est(100.0, 2.0); // [98, 102]
        let r = reply(100.5, 0.3, 0.0); // [100.2, 100.8]
        match im_round(&own, DriftRate::ZERO, &[r]) {
            ImOutcome::Reset(reset) => {
                assert!((reset.new_clock.as_secs() - 100.5).abs() < 1e-12);
                assert!((reset.new_error.as_secs() - 0.3).abs() < 1e-12);
            }
            ImOutcome::Inconsistent => panic!("inner interval intersects"),
        }
    }

    #[test]
    fn empty_intersection_is_inconsistent() {
        let own = est(100.0, 0.1);
        let r = reply(105.0, 0.1, 0.0);
        assert_eq!(
            im_round(&own, DriftRate::ZERO, &[r]),
            ImOutcome::Inconsistent
        );
    }

    #[test]
    fn pairwise_consistent_but_jointly_empty_is_inconsistent() {
        // Three intervals, each pair intersects, but no common point —
        // consistency is not transitive, and IM detects the emptiness.
        let own = est(0.0, 1.0); // [-1, 1]
        let r1 = reply(1.8, 1.0, 0.0); // [0.8, 2.8]
        let r2 = reply(-1.8, 1.0, 0.0); // [-2.8, -0.8]
        assert!(own.is_consistent_with(&r1.estimate));
        assert!(own.is_consistent_with(&r2.estimate));
        assert_eq!(
            im_round(&own, DriftRate::ZERO, &[r1, r2]),
            ImOutcome::Inconsistent
        );
    }

    #[test]
    fn touching_intervals_intersect_in_a_point() {
        let own = est(0.0, 1.0); // [-1, 1]
        let r = reply(2.0, 1.0, 0.0); // [1, 3]
        match im_round(&own, DriftRate::ZERO, &[r]) {
            ImOutcome::Reset(reset) => {
                assert_eq!(reset.new_clock, ts(1.0));
                assert_eq!(reset.new_error, Duration::ZERO);
            }
            ImOutcome::Inconsistent => panic!("touching intervals share a point"),
        }
    }

    #[test]
    fn round_trip_widens_only_the_leading_edge() {
        let own = est(0.0, 10.0);
        let delta = DriftRate::new(0.5);
        let r = reply(0.0, 1.0, 2.0);
        let rel = im_transform(&own, delta, &r);
        assert_eq!(rel.trailing, dur(-1.0));
        // L = 1.0 + 1.5·2.0 = 4.0
        assert_eq!(rel.leading, dur(4.0));
    }

    #[test]
    fn result_is_exact_interval_intersection() {
        // Cross-check im_round against TimeInterval::intersect_all on the
        // same (already-widened) intervals.
        use crate::interval::TimeInterval;
        let own = est(100.0, 1.3);
        let delta = DriftRate::new(0.001);
        let replies = [
            reply(100.4, 0.9, 0.03),
            reply(99.8, 1.1, 0.01),
            reply(100.1, 0.6, 0.05),
        ];
        let outcome = im_round(&own, delta, &replies);
        let mut intervals = vec![own.interval()];
        for r in &replies {
            intervals.push(
                r.estimate
                    .interval()
                    .extend_leading(r.round_trip * delta.inflation()),
            );
        }
        let expected = TimeInterval::intersect_all(&intervals).unwrap();
        let reset = outcome.reset().unwrap();
        assert!((reset.new_clock.as_secs() - expected.midpoint().as_secs()).abs() < 1e-12);
        assert!((reset.new_error.as_secs() - expected.radius().as_secs()).abs() < 1e-12);
    }

    #[test]
    fn theorem6_never_wider_than_narrowest() {
        let own = est(100.0, 2.0);
        let replies = [reply(100.2, 1.5, 0.0), reply(99.9, 0.7, 0.0)];
        let reset = im_round(&own, DriftRate::ZERO, &replies)
            .reset()
            .expect("consistent");
        let narrowest = replies
            .iter()
            .map(|r| r.estimate.error())
            .fold(own.error(), Duration::min);
        assert!(reset.new_error <= narrowest);
    }

    #[test]
    fn outcome_reset_accessor() {
        assert!(ImOutcome::Inconsistent.reset().is_none());
        let own = est(0.0, 1.0);
        assert!(im_round(&own, DriftRate::ZERO, &[]).reset().is_some());
    }
}
