//! Time estimates `⟨C, E⟩` and the MM-1 error-growth rule.
//!
//! A time server maintains three quantities (rule MM-1 of the paper): its
//! clock `C_i`, the clock value at its last reset `r_i`, and the error
//! `ε_i` it inherited at that reset. When asked the time at clock reading
//! `C_i(t)` it answers with the pair
//!
//! ```text
//! ⟨C_i(t), E_i(t)⟩   with   E_i(t) = ε_i + (C_i(t) − r_i) · δ_i
//! ```
//!
//! [`ErrorState`] is the `(r_i, ε_i, δ_i)` triple; [`TimeEstimate`] is the
//! reported pair.

use std::fmt;

use crate::interval::TimeInterval;
use crate::time::{DriftRate, Duration, Timestamp};

/// A reported pair `⟨C, E⟩`: a clock reading plus its maximum error.
///
/// Equivalent to the interval `[C − E, C + E]`; the estimate is *correct*
/// at real time `t` when `t` lies in that interval.
///
/// ```
/// use tempo_core::{TimeEstimate, Timestamp, Duration};
///
/// let e = TimeEstimate::new(Timestamp::from_secs(100.0), Duration::from_secs(0.5));
/// assert!(e.is_correct_at(Timestamp::from_secs(100.4)));
/// assert!(!e.is_correct_at(Timestamp::from_secs(101.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeEstimate {
    time: Timestamp,
    error: Duration,
}

impl TimeEstimate {
    /// Creates an estimate from a clock reading and a maximum error.
    ///
    /// # Panics
    ///
    /// Panics if `error` is negative.
    #[must_use]
    pub fn new(time: Timestamp, error: Duration) -> Self {
        assert!(
            !error.is_negative(),
            "maximum error must be non-negative, got {error}"
        );
        TimeEstimate { time, error }
    }

    /// The clock reading `C`.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// The maximum error `E`.
    #[must_use]
    pub fn error(&self) -> Duration {
        self.error
    }

    /// The interval `[C − E, C + E]` this estimate claims contains real
    /// time.
    #[must_use]
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::from_center_radius(self.time, self.error)
    }

    /// `true` when real time `t` lies within the claimed interval — the
    /// paper's definition of a *correct* server (§2.1).
    #[must_use]
    pub fn is_correct_at(&self, real_time: Timestamp) -> bool {
        self.interval().contains(real_time)
    }

    /// The paper's *consistency* predicate (§2.3):
    /// `|C_i − C_j| ≤ E_i + E_j`. Two correct servers are always
    /// consistent; inconsistency proves at least one of them is incorrect.
    ///
    /// ```
    /// use tempo_core::{TimeEstimate, Timestamp, Duration};
    ///
    /// // The paper's example: 3:01 ± 0:02 vs 3:06 ± 0:02 cannot both be
    /// // right.
    /// let a = TimeEstimate::new(Timestamp::from_secs(181.0), Duration::from_secs(2.0));
    /// let b = TimeEstimate::new(Timestamp::from_secs(186.0), Duration::from_secs(2.0));
    /// assert!(!a.is_consistent_with(&b));
    /// ```
    #[must_use]
    pub fn is_consistent_with(&self, other: &TimeEstimate) -> bool {
        (self.time - other.time).abs() <= self.error + other.error
    }

    /// How far apart the two clock readings are: `|C_i − C_j|`.
    #[must_use]
    pub fn separation(&self, other: &TimeEstimate) -> Duration {
        (self.time - other.time).abs()
    }
}

impl fmt::Display for TimeEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ± {}", self.time, self.error)
    }
}

impl From<TimeEstimate> for TimeInterval {
    fn from(e: TimeEstimate) -> TimeInterval {
        e.interval()
    }
}

/// The per-server synchronization state `(r_i, ε_i, δ_i)` of rule MM-1.
///
/// Given the current clock reading `C_i(t)`, [`ErrorState::error_at`]
/// computes `E_i(t) = ε_i + (C_i(t) − r_i)·δ_i` and
/// [`ErrorState::estimate_at`] packages the full reply. A reset (rules
/// MM-2 / IM-2) replaces `r_i` and `ε_i` via [`ErrorState::reset`].
///
/// ```
/// use tempo_core::{ErrorState, DriftRate, Duration, Timestamp};
///
/// let mut state = ErrorState::new(
///     Timestamp::from_secs(0.0),
///     Duration::from_secs(0.1),
///     DriftRate::new(1e-3),
/// );
/// // After 100 clock-seconds without a reset the error has grown by 0.1s.
/// let e = state.error_at(Timestamp::from_secs(100.0));
/// assert_eq!(e, Duration::from_secs(0.2));
///
/// state.reset(Timestamp::from_secs(100.0), Duration::from_secs(0.05));
/// assert_eq!(state.error_at(Timestamp::from_secs(100.0)), Duration::from_secs(0.05));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorState {
    last_reset: Timestamp,
    inherited_error: Duration,
    drift_bound: DriftRate,
}

impl ErrorState {
    /// Creates the state of a server that last reset at clock reading
    /// `last_reset` with inherited error `inherited_error`, and whose
    /// clock has claimed drift bound `drift_bound`.
    ///
    /// # Panics
    ///
    /// Panics if `inherited_error` is negative.
    #[must_use]
    pub fn new(last_reset: Timestamp, inherited_error: Duration, drift_bound: DriftRate) -> Self {
        assert!(
            !inherited_error.is_negative(),
            "inherited error must be non-negative, got {inherited_error}"
        );
        ErrorState {
            last_reset,
            inherited_error,
            drift_bound,
        }
    }

    /// The clock reading `r_i` at the last reset.
    #[must_use]
    pub fn last_reset(&self) -> Timestamp {
        self.last_reset
    }

    /// The inherited error `ε_i`.
    #[must_use]
    pub fn inherited_error(&self) -> Duration {
        self.inherited_error
    }

    /// The claimed drift bound `δ_i`.
    #[must_use]
    pub fn drift_bound(&self) -> DriftRate {
        self.drift_bound
    }

    /// Rule MM-1: the maximum error at clock reading `clock_now`,
    /// `E_i = ε_i + (C_i − r_i)·δ_i`.
    ///
    /// `clock_now` may not precede the last reset (clock readings between
    /// resets are monotonic because clocks are continuous with rate
    /// `≥ 1 − δ > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `clock_now < last_reset`.
    #[must_use]
    pub fn error_at(&self, clock_now: Timestamp) -> Duration {
        let since_reset = clock_now - self.last_reset;
        assert!(
            !since_reset.is_negative(),
            "clock reading {clock_now} precedes last reset {}",
            self.last_reset
        );
        self.inherited_error + since_reset * self.drift_bound
    }

    /// The full reply `⟨C_i, E_i⟩` at clock reading `clock_now`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_now < last_reset`.
    #[must_use]
    pub fn estimate_at(&self, clock_now: Timestamp) -> TimeEstimate {
        TimeEstimate::new(clock_now, self.error_at(clock_now))
    }

    /// Records a reset: the clock was just set to `new_clock` and the
    /// server inherited error `new_error` (`ε_i ← new_error`,
    /// `r_i ← new_clock`).
    ///
    /// # Panics
    ///
    /// Panics if `new_error` is negative.
    pub fn reset(&mut self, new_clock: Timestamp, new_error: Duration) {
        assert!(
            !new_error.is_negative(),
            "inherited error must be non-negative, got {new_error}"
        );
        self.last_reset = new_clock;
        self.inherited_error = new_error;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn estimate_accessors_and_interval() {
        let e = TimeEstimate::new(ts(10.0), dur(2.0));
        assert_eq!(e.time(), ts(10.0));
        assert_eq!(e.error(), dur(2.0));
        let i = e.interval();
        assert_eq!(i.lo(), ts(8.0));
        assert_eq!(i.hi(), ts(12.0));
        let i2: TimeInterval = e.into();
        assert_eq!(i, i2);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn estimate_rejects_negative_error() {
        let _ = TimeEstimate::new(ts(0.0), dur(-1.0));
    }

    #[test]
    fn correctness_is_interval_membership() {
        let e = TimeEstimate::new(ts(10.0), dur(1.0));
        assert!(e.is_correct_at(ts(9.0)));
        assert!(e.is_correct_at(ts(11.0)));
        assert!(!e.is_correct_at(ts(8.999)));
        assert!(!e.is_correct_at(ts(11.001)));
    }

    #[test]
    fn consistency_is_symmetric() {
        let a = TimeEstimate::new(ts(0.0), dur(1.0));
        let b = TimeEstimate::new(ts(1.5), dur(1.0));
        assert!(a.is_consistent_with(&b));
        assert!(b.is_consistent_with(&a));
        let c = TimeEstimate::new(ts(3.0), dur(0.5));
        assert!(!a.is_consistent_with(&c));
        assert!(!c.is_consistent_with(&a));
    }

    #[test]
    fn consistency_boundary_case() {
        // |C_i − C_j| exactly equal to E_i + E_j is still consistent.
        let a = TimeEstimate::new(ts(0.0), dur(1.0));
        let b = TimeEstimate::new(ts(2.0), dur(1.0));
        assert!(a.is_consistent_with(&b));
    }

    #[test]
    fn consistency_is_not_transitive() {
        // The paper warns (§3) that majority voting fails because
        // consistency is not transitive: a~b and b~c do not imply a~c.
        let a = TimeEstimate::new(ts(0.0), dur(1.0));
        let b = TimeEstimate::new(ts(1.8), dur(1.0));
        let c = TimeEstimate::new(ts(3.6), dur(1.0));
        assert!(a.is_consistent_with(&b));
        assert!(b.is_consistent_with(&c));
        assert!(!a.is_consistent_with(&c));
    }

    #[test]
    fn separation() {
        let a = TimeEstimate::new(ts(1.0), dur(0.0));
        let b = TimeEstimate::new(ts(4.0), dur(0.0));
        assert_eq!(a.separation(&b), dur(3.0));
        assert_eq!(b.separation(&a), dur(3.0));
    }

    #[test]
    fn display() {
        let e = TimeEstimate::new(ts(1.0), dur(0.5));
        assert_eq!(e.to_string(), "1.000000s ± 500.000ms");
    }

    #[test]
    fn error_growth_is_linear_in_clock_time() {
        // Lemma 1: without a reset the error grows as δ·Δ.
        let state = ErrorState::new(ts(0.0), dur(1.0), DriftRate::new(0.01));
        assert_eq!(state.error_at(ts(0.0)), dur(1.0));
        assert_eq!(state.error_at(ts(50.0)), dur(1.5));
        assert_eq!(state.error_at(ts(100.0)), dur(2.0));
    }

    #[test]
    fn reset_restarts_growth() {
        let mut state = ErrorState::new(ts(0.0), dur(1.0), DriftRate::new(0.01));
        state.reset(ts(100.0), dur(0.25));
        assert_eq!(state.last_reset(), ts(100.0));
        assert_eq!(state.inherited_error(), dur(0.25));
        assert_eq!(state.error_at(ts(100.0)), dur(0.25));
        assert_eq!(state.error_at(ts(200.0)), dur(1.25));
    }

    #[test]
    fn estimate_at_packages_both_fields() {
        let state = ErrorState::new(ts(0.0), dur(0.5), DriftRate::new(0.001));
        let e = state.estimate_at(ts(1000.0));
        assert_eq!(e.time(), ts(1000.0));
        assert_eq!(e.error(), dur(1.5));
    }

    #[test]
    #[should_panic(expected = "precedes last reset")]
    fn error_at_rejects_pre_reset_reading() {
        let state = ErrorState::new(ts(10.0), dur(0.0), DriftRate::ZERO);
        let _ = state.error_at(ts(9.0));
    }

    #[test]
    fn perfect_clock_never_accumulates_error() {
        let state = ErrorState::new(ts(0.0), dur(0.0), DriftRate::ZERO);
        assert_eq!(state.error_at(ts(1e9)), Duration::ZERO);
    }
}
