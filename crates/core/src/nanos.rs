//! Integer-precision time: the boundary types for embedding `tempo` in
//! real systems.
//!
//! The simulation side of this crate works in `f64` seconds — ideal for
//! the paper's real-valued analysis, but a production deployment wants
//! exact integer arithmetic at its edges (kernel timestamps, wire
//! formats, databases). [`NanoTimestamp`] and [`NanoDuration`] are
//! signed 64-bit nanosecond counts with checked/saturating arithmetic
//! and lossless conversion to and from the NTP 64-bit era format — the
//! wire representation the paper's intellectual descendants settled on.
//!
//! Conversions to the `f64` types are exact for any value a simulation
//! produces (|t| < 2⁵³ ns ≈ 104 days at full precision, and within
//! 1 ns beyond); conversions *from* `f64` round to the nearest
//! nanosecond.

use std::fmt;

use crate::time::{Duration, Timestamp};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: i64 = 1_000_000_000;

/// An instant as a signed 64-bit count of nanoseconds since the epoch
/// (range ≈ ±292 years).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NanoTimestamp(i64);

/// A signed span of nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NanoDuration(i64);

impl NanoTimestamp {
    /// The epoch.
    pub const ZERO: NanoTimestamp = NanoTimestamp(0);

    /// Creates a timestamp from nanoseconds since the epoch.
    #[must_use]
    pub fn from_nanos(nanos: i64) -> Self {
        NanoTimestamp(nanos)
    }

    /// The count of nanoseconds since the epoch.
    #[must_use]
    pub fn as_nanos(self) -> i64 {
        self.0
    }

    /// Converts from the `f64` timestamp, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if the value is out of the representable ±292-year range.
    #[must_use]
    pub fn from_timestamp(t: Timestamp) -> Self {
        let nanos = (t.as_secs() * NANOS_PER_SEC as f64).round();
        assert!(
            nanos >= i64::MIN as f64 && nanos <= i64::MAX as f64,
            "timestamp {t} out of NanoTimestamp range"
        );
        NanoTimestamp(nanos as i64)
    }

    /// Converts to the `f64` timestamp.
    #[must_use]
    pub fn to_timestamp(self) -> Timestamp {
        Timestamp::from_secs(self.0 as f64 / NANOS_PER_SEC as f64)
    }

    /// Checked addition of a span.
    #[must_use]
    pub fn checked_add(self, d: NanoDuration) -> Option<NanoTimestamp> {
        self.0.checked_add(d.0).map(NanoTimestamp)
    }

    /// Checked subtraction of a span.
    #[must_use]
    pub fn checked_sub(self, d: NanoDuration) -> Option<NanoTimestamp> {
        self.0.checked_sub(d.0).map(NanoTimestamp)
    }

    /// Saturating addition of a span.
    #[must_use]
    pub fn saturating_add(self, d: NanoDuration) -> NanoTimestamp {
        NanoTimestamp(self.0.saturating_add(d.0))
    }

    /// The span from `earlier` to `self` (checked).
    #[must_use]
    pub fn checked_since(self, earlier: NanoTimestamp) -> Option<NanoDuration> {
        self.0.checked_sub(earlier.0).map(NanoDuration)
    }

    /// Encodes as the NTP 64-bit timestamp format: the high 32 bits are
    /// whole seconds (two's-complement relative to the epoch) and the
    /// low 32 bits are the binary fraction of a second.
    ///
    /// Resolution is 2⁻³² s ≈ 233 ps, finer than a nanosecond, so the
    /// nanosecond value round-trips exactly through
    /// [`NanoTimestamp::from_ntp_bits`].
    ///
    /// # Panics
    ///
    /// Panics if the whole-second part does not fit in 32 bits
    /// (±68 years of the epoch) — the classic NTP era limit.
    #[must_use]
    pub fn to_ntp_bits(self) -> u64 {
        let secs = self.0.div_euclid(NANOS_PER_SEC);
        let nanos = self.0.rem_euclid(NANOS_PER_SEC); // 0..1e9
        assert!(
            i64::from(i32::MIN) <= secs && secs <= i64::from(i32::MAX),
            "timestamp outside the NTP era (±68 years)"
        );
        // fraction = round(nanos · 2³² / 1e9); stays < 2³² since
        // nanos < 1e9.
        let frac = ((nanos as u128 * (1u128 << 32) + (NANOS_PER_SEC as u128 / 2))
            / NANOS_PER_SEC as u128) as u64;
        // nanos ≤ 999_999_999 ⇒ frac ≤ 4_294_967_292 < 2³².
        ((secs as u32 as u64) << 32) | (frac & 0xFFFF_FFFF)
    }

    /// Decodes the NTP 64-bit timestamp format (see
    /// [`NanoTimestamp::to_ntp_bits`]), rounding the fraction to the
    /// nearest nanosecond.
    #[must_use]
    pub fn from_ntp_bits(bits: u64) -> Self {
        let secs = i64::from((bits >> 32) as u32 as i32);
        let frac = bits & 0xFFFF_FFFF;
        let nanos = ((frac as u128 * NANOS_PER_SEC as u128 + (1u128 << 31)) >> 32) as i64;
        NanoTimestamp(secs * NANOS_PER_SEC + nanos)
    }
}

impl NanoDuration {
    /// The zero span.
    pub const ZERO: NanoDuration = NanoDuration(0);

    /// Creates a span from nanoseconds.
    #[must_use]
    pub fn from_nanos(nanos: i64) -> Self {
        NanoDuration(nanos)
    }

    /// The span in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> i64 {
        self.0
    }

    /// Converts from the `f64` duration, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if the value is out of the representable range.
    #[must_use]
    pub fn from_duration(d: Duration) -> Self {
        let nanos = (d.as_secs() * NANOS_PER_SEC as f64).round();
        assert!(
            nanos >= i64::MIN as f64 && nanos <= i64::MAX as f64,
            "duration {d} out of NanoDuration range"
        );
        NanoDuration(nanos as i64)
    }

    /// Converts to the `f64` duration.
    #[must_use]
    pub fn to_duration(self) -> Duration {
        Duration::from_secs(self.0 as f64 / NANOS_PER_SEC as f64)
    }

    /// Checked addition.
    #[must_use]
    pub fn checked_add(self, other: NanoDuration) -> Option<NanoDuration> {
        self.0.checked_add(other.0).map(NanoDuration)
    }

    /// Checked negation-free absolute value.
    #[must_use]
    pub fn checked_abs(self) -> Option<NanoDuration> {
        self.0.checked_abs().map(NanoDuration)
    }

    /// Saturating multiplication by an integer factor.
    #[must_use]
    pub fn saturating_mul(self, factor: i64) -> NanoDuration {
        NanoDuration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for NanoTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(
            f,
            "{sign}{}.{:09}s",
            abs / NANOS_PER_SEC as u64,
            abs % NANOS_PER_SEC as u64
        )
    }
}

impl fmt::Display for NanoDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_from_f64() {
        let t = Timestamp::from_secs(1_234.567_890_123);
        let n = NanoTimestamp::from_timestamp(t);
        assert_eq!(n.as_nanos(), 1_234_567_890_123);
        assert!((n.to_timestamp().as_secs() - t.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn negative_values() {
        let n = NanoTimestamp::from_timestamp(Timestamp::from_secs(-1.5));
        assert_eq!(n.as_nanos(), -1_500_000_000);
        assert_eq!(n.to_timestamp(), Timestamp::from_secs(-1.5));
        assert_eq!(n.to_string(), "-1.500000000s");
    }

    #[test]
    fn arithmetic_checked_and_saturating() {
        let t = NanoTimestamp::from_nanos(100);
        let d = NanoDuration::from_nanos(50);
        assert_eq!(t.checked_add(d), Some(NanoTimestamp::from_nanos(150)));
        assert_eq!(t.checked_sub(d), Some(NanoTimestamp::from_nanos(50)));
        assert_eq!(
            NanoTimestamp::from_nanos(i64::MAX).checked_add(NanoDuration::from_nanos(1)),
            None
        );
        assert_eq!(
            NanoTimestamp::from_nanos(i64::MAX).saturating_add(NanoDuration::from_nanos(1)),
            NanoTimestamp::from_nanos(i64::MAX)
        );
        assert_eq!(
            NanoTimestamp::from_nanos(150).checked_since(t),
            Some(NanoDuration::from_nanos(50))
        );
    }

    #[test]
    fn duration_ops() {
        let d = NanoDuration::from_duration(Duration::from_millis(1.5));
        assert_eq!(d.as_nanos(), 1_500_000);
        assert_eq!(d.to_duration(), Duration::from_millis(1.5));
        assert_eq!(
            d.checked_add(NanoDuration::from_nanos(1)),
            Some(NanoDuration::from_nanos(1_500_001))
        );
        assert_eq!(
            NanoDuration::from_nanos(-5).checked_abs(),
            Some(NanoDuration::from_nanos(5))
        );
        assert_eq!(
            NanoDuration::from_nanos(i64::MAX).saturating_mul(2),
            NanoDuration::from_nanos(i64::MAX)
        );
        assert_eq!(NanoDuration::from_nanos(7).to_string(), "7ns");
    }

    #[test]
    fn ntp_bits_roundtrip_exact_at_nanosecond() {
        for nanos in [
            0i64,
            1,
            999_999_999,
            1_000_000_000,
            -1,
            -999_999_999,
            1_234_567_890_123,
            -987_654_321_098,
        ] {
            let t = NanoTimestamp::from_nanos(nanos);
            let back = NanoTimestamp::from_ntp_bits(t.to_ntp_bits());
            assert_eq!(back, t, "nanos {nanos} did not round-trip");
        }
    }

    #[test]
    fn ntp_bits_layout() {
        // Exactly 1.5 s: high word 1, low word 0x8000_0000.
        let t = NanoTimestamp::from_nanos(1_500_000_000);
        assert_eq!(t.to_ntp_bits(), (1u64 << 32) | 0x8000_0000);
        // Exactly −0.5 s: seconds −1 (two's complement), fraction 0.5.
        let t = NanoTimestamp::from_nanos(-500_000_000);
        let bits = t.to_ntp_bits();
        assert_eq!((bits >> 32) as u32, u32::MAX); // −1
        assert_eq!(bits & 0xFFFF_FFFF, 0x8000_0000);
    }

    #[test]
    #[should_panic(expected = "NTP era")]
    fn ntp_bits_era_limit() {
        // 100 years of nanoseconds exceeds the ±68-year era.
        let t = NanoTimestamp::from_nanos(100 * 365 * 86_400 * NANOS_PER_SEC);
        let _ = t.to_ntp_bits();
    }

    #[test]
    #[should_panic(expected = "out of NanoTimestamp range")]
    fn f64_overflow_rejected() {
        let _ = NanoTimestamp::from_timestamp(Timestamp::from_secs(1e30));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            NanoTimestamp::from_nanos(1_000_000_001).to_string(),
            "1.000000001s"
        );
        assert_eq!(NanoTimestamp::ZERO.to_string(), "0.000000000s");
    }

    #[test]
    fn ordering() {
        assert!(NanoTimestamp::from_nanos(1) < NanoTimestamp::from_nanos(2));
        assert!(NanoDuration::from_nanos(-1) < NanoDuration::ZERO);
    }
}
