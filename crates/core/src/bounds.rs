//! The paper's bound formulas as named functions.
//!
//! Every theorem in §3–§4 is an inequality between an observable quantity
//! and a closed-form bound. Until now those right-hand sides lived as
//! inline arithmetic scattered through `sync::mm`, `sync::im`, and the
//! experiment harness, which meant the oracle (and any future regression
//! check) would have to re-derive them. This module is the single home:
//! each function is the bound of exactly one rule or theorem, named after
//! it, so a checker can cite "Theorem 2" and mean this code.
//!
//! Conventions: `xi` (ξ) is the round-trip bound, `tau` (τ) the resync
//! period, `delta` (δ) a drift bound, `e_m` the maximum error `E_M` of
//! any correct server. All quantities are in the clock's second units.

use crate::time::{DriftRate, Duration};

/// Rule MM-1: the error of `⟨C, E⟩` after the clock has advanced by
/// `elapsed` since the last reset left it at `epsilon`:
/// `E(t) = ε + (C(t) − r)·δ`.
#[must_use]
pub fn mm1_error_after(
    epsilon: Duration,
    elapsed_on_clock: Duration,
    delta: DriftRate,
) -> Duration {
    epsilon + elapsed_on_clock * delta
}

/// Rule MM-2's adjusted error for a reply: `E_j + (1+δ_i)·ξ^i_j`.
///
/// This is both the adoption predicate's left-hand side (adopt iff it is
/// `≤ E_i`) and the error the adopter inherits on reset.
#[must_use]
pub fn mm2_adjusted_error(
    reply_error: Duration,
    round_trip: Duration,
    delta: DriftRate,
) -> Duration {
    reply_error + round_trip * delta.inflation()
}

/// Rule IM-2's leading-edge allowance: `(1+δ_i)·ξ^i_j`.
///
/// Only the leading edge of a transformed reply interval is widened by
/// this much — while the reply was in flight, real time can only have
/// advanced.
#[must_use]
pub fn im2_leading_allowance(round_trip: Duration, delta: DriftRate) -> Duration {
    round_trip * delta.inflation()
}

/// Theorem 2: steady-state error bound for MM,
/// `E_i ≤ E_M + ξ + δ_i(τ + 2ξ)`.
#[must_use]
pub fn thm2_error_bound(e_m: Duration, xi: Duration, tau: Duration, delta: DriftRate) -> Duration {
    e_m + xi + (tau + xi + xi) * delta
}

/// Theorem 2 restated as a gap above `E_M`:
/// `E_i − E_M ≤ ξ + δ_i(τ + 2ξ) + 2δ_iξ`.
///
/// The trailing `2δ_iξ` reinstates the slack the paper's proof drops as
/// second-order; the experiments check against the honest (larger) form.
#[must_use]
pub fn thm2_gap_bound(xi: Duration, tau: Duration, delta: DriftRate) -> Duration {
    xi + (tau + xi + xi) * delta + (xi + xi) * delta
}

/// Theorem 3: pairwise asynchronism bound for MM,
/// `|C_i − C_j| ≤ 2E_M + 2ξ + (δ_i+δ_j)(τ + 2ξ) + 2(δ_i+δ_j)ξ`.
///
/// As with [`thm2_gap_bound`], the final term reinstates the proof's
/// dropped second-order slack.
#[must_use]
pub fn thm3_asynchronism_bound(
    e_m: Duration,
    xi: Duration,
    tau: Duration,
    delta_i: DriftRate,
    delta_j: DriftRate,
) -> Duration {
    // δ_i + δ_j can reach 2, outside DriftRate's domain — stay in f64.
    let delta_sum = delta_i.as_f64() + delta_j.as_f64();
    let span = tau + xi + xi;
    e_m + e_m
        + xi
        + xi
        + Duration::from_secs(span.as_secs() * delta_sum)
        + Duration::from_secs(2.0 * xi.as_secs() * delta_sum)
}

/// Theorem 7: pairwise asynchronism bound for IM,
/// `|C_i − C_j| ≤ ξ + (δ_i+δ_j)·τ`.
///
/// `tau` here is the *effective* inter-reset spacing: callers modelling a
/// protocol whose resets are not simultaneous should pass the worst-case
/// spacing (period plus jitter plus collection window) rather than the
/// nominal period.
#[must_use]
pub fn thm7_asynchronism_bound(
    xi: Duration,
    tau: Duration,
    delta_i: DriftRate,
    delta_j: DriftRate,
) -> Duration {
    let delta_sum = delta_i.as_f64() + delta_j.as_f64();
    xi + Duration::from_secs(tau.as_secs() * delta_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn mm1_growth_is_linear_in_elapsed_clock_time() {
        let e = mm1_error_after(dur(0.5), dur(100.0), DriftRate::new(1e-3));
        assert!((e.as_secs() - 0.6).abs() < 1e-12);
        assert_eq!(
            mm1_error_after(dur(0.5), Duration::ZERO, DriftRate::new(1e-3)),
            dur(0.5)
        );
    }

    #[test]
    fn mm2_adjusted_error_matches_rule() {
        // E_j + (1+δ)ξ = 0.3 + 1.01·0.1
        let adj = mm2_adjusted_error(dur(0.3), dur(0.1), DriftRate::new(0.01));
        assert!((adj.as_secs() - 0.401).abs() < 1e-12);
    }

    #[test]
    fn im2_allowance_matches_rule() {
        let a = im2_leading_allowance(dur(2.0), DriftRate::new(0.5));
        assert_eq!(a, dur(3.0));
    }

    #[test]
    fn thm2_bound_is_e_m_plus_gap_without_slack() {
        let (xi, tau, d) = (dur(0.01), dur(10.0), DriftRate::new(1e-4));
        let with_e_m = thm2_error_bound(dur(0.2), xi, tau, d);
        // gap bound carries an extra 2δξ of slack on top of Thm 2 proper.
        let slack = (xi + xi) * d;
        let gap = thm2_gap_bound(xi, tau, d);
        assert!(((with_e_m.as_secs() - 0.2 + slack.as_secs()) - gap.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn thm3_bound_reduces_to_expected_closed_form() {
        let (e_m, xi, tau, d) = (dur(0.1), dur(0.01), dur(10.0), DriftRate::new(1e-4));
        let b = thm3_asynchronism_bound(e_m, xi, tau, d, d).as_secs();
        let expect = 2.0 * 0.1 + 2.0 * 0.01 + 2.0 * 1e-4 * (10.0 + 0.02) + 4.0 * 1e-4 * 0.01;
        assert!((b - expect).abs() < 1e-12);
    }

    #[test]
    fn thm7_bound_reduces_to_expected_closed_form() {
        let b = thm7_asynchronism_bound(
            dur(0.01),
            dur(11.0),
            DriftRate::new(1e-4),
            DriftRate::new(2e-4),
        );
        assert!((b.as_secs() - (0.01 + 3e-4 * 11.0)).abs() < 1e-12);
    }
}
