//! The lock-free published clock snapshot — the serving-path half of
//! the sync-core / serving-front split.
//!
//! The paper's read operation is pure: a time request is answered with
//! `⟨C_i(t), E_i(t)⟩` where `E_i(t) = ε_i + (C_i(t) − r_i)·δ_i` (rule
//! MM-1) — a function of the last published `(r_i, ε_i)` pair and the
//! current clock reading, touching none of the synchronization
//! machinery. That makes the read path trivially parallelisable *if*
//! the `(r_i, ε_i)` pair can be read consistently without taking the
//! sync actor's lock (or, worse, funnelling every request through its
//! single-threaded event loop).
//!
//! [`SnapshotCell`] is that publication point: a seqlock. The sync
//! core (single writer) calls [`SnapshotCell::publish`] at every reset
//! and lifecycle transition; any number of serving threads call
//! [`SnapshotCell::read`] concurrently, wait-free on the writer's
//! side and obstruction-free on theirs (a reader retries only while a
//! write is in flight — and writes are rare: one per adoption, i.e.
//! per resync period, not per request).
//!
//! ## Memory-ordering argument
//!
//! The payload is stored as individually atomic `u64` words, so no
//! load ever observes a torn *word* (this is what keeps the whole
//! construction inside safe Rust). Tuple consistency across words is
//! the seqlock's job:
//!
//! * the writer bumps the sequence to an **odd** value with a
//!   `Release`-ordered RMW *before* touching the payload, writes the
//!   words (`Relaxed`), then publishes the **even** successor with a
//!   `Release` store — so a reader that observes the final even value
//!   with an `Acquire` load is guaranteed, by release/acquire
//!   synchronisation on `seq` itself, to observe every payload word
//!   written before it;
//! * a reader loads `seq` (`Acquire`), gives up on odd (write in
//!   flight), loads the words (`Relaxed`), then loads `seq` again
//!   (`Acquire`) — the second load can only equal the first if no
//!   writer bumped the sequence in between, i.e. the words belong to
//!   one generation. The `Acquire` on the *first* load pairs with the
//!   writer's final `Release` store; the re-read is made meaningful by
//!   the writer's odd bump being `Release`-ordered *before* its word
//!   stores (an in-flight write is always visible as an odd or
//!   advanced sequence).
//!
//! Belt and braces, every payload carries a mixing checksum over its
//! words, verified on read — so even a hypothetical ordering bug (or a
//! cosmic-ray word flip) surfaces as a retry, never as a garbage
//! estimate. The stress test in `tests/snapshot_stress.rs` hammers
//! exactly this property from eight threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::estimate::{ErrorState, TimeEstimate};
use crate::time::{DriftRate, Duration, Timestamp};

/// Number of payload words in a [`SnapshotCell`] (checksum excluded).
const WORDS: usize = 7;

/// One published serving state: the rule MM-1 triple plus the affine
/// clock map and lifecycle tag a detached serving thread needs to
/// answer `⟨C, E⟩` on its own.
///
/// * `reset_clock`, `inherited_error`, `drift_bound` — the MM-1 state
///   `(r, ε, δ)`: given a clock reading `C`, the served error is
///   `E = ε + (C − r)·δ`.
/// * `base_clock`, `base_real` — the served clock reading and the
///   publisher's real-time axis value at the publish instant, so a
///   thread that cannot read the hardware clock extrapolates
///   `C(t) ≈ base_clock + (t − base_real)` (the claimed rate is 1; the
///   approximation error over one resync period is bounded by the true
///   drift, which rule MM-1's `δ` already budgets for).
/// * `epoch` — the publisher's crash–restart lifecycle epoch; bumps
///   prove a snapshot straddled a crash.
/// * `serving` — false while the publisher is crashed, booting after
///   an amnesia restart, or departed: readers must refuse (the actor
///   answers `Uninitialized` or stays silent in those states, and the
///   front must not serve stale time on its behalf).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSnapshot {
    /// Clock reading `r` at the last reset.
    pub reset_clock: Timestamp,
    /// Error `ε` inherited at that reset.
    pub inherited_error: Duration,
    /// Claimed drift bound `δ`.
    pub drift_bound: DriftRate,
    /// Served clock reading at the publish instant.
    pub base_clock: Timestamp,
    /// Publisher's real-time ("seconds since runtime start") at the
    /// publish instant.
    pub base_real: Timestamp,
    /// Crash–restart lifecycle epoch at the publish instant.
    pub epoch: u32,
    /// Whether the publisher was actively serving time.
    pub serving: bool,
}

impl ClockSnapshot {
    /// The reply `⟨C, E⟩` for clock reading `clock_now`, by rule MM-1 —
    /// the exact float-op sequence of [`ErrorState::estimate_at`], so a
    /// snapshot-served reading is bit-identical to an actor-served one
    /// taken at the same clock reading.
    ///
    /// Readings that precede the reset point (possible only through
    /// affine extrapolation racing a fresh publish) are clamped to it
    /// rather than panicking: the serving path must never fall over on
    /// a boundary the sync core has already moved past.
    #[must_use]
    pub fn estimate_at(&self, clock_now: Timestamp) -> TimeEstimate {
        let clock = clock_now.max(self.reset_clock);
        ErrorState::new(self.reset_clock, self.inherited_error, self.drift_bound).estimate_at(clock)
    }

    /// The extrapolated clock reading at publisher real time
    /// `real_now`, via the affine map `base_clock + (real_now −
    /// base_real)` (claimed rate 1).
    #[must_use]
    pub fn clock_at(&self, real_now: Timestamp) -> Timestamp {
        self.base_clock + (real_now - self.base_real)
    }

    /// The full serving-path read: extrapolate the clock to
    /// `real_now`, then apply rule MM-1. `None` while the publisher is
    /// not serving (crashed, booting, or departed).
    #[must_use]
    pub fn serve(&self, real_now: Timestamp) -> Option<TimeEstimate> {
        if !self.serving {
            return None;
        }
        Some(self.estimate_at(self.clock_at(real_now)))
    }

    /// The payload as checksum-covered words (field order fixed).
    fn to_words(self) -> [u64; WORDS] {
        [
            self.reset_clock.as_secs().to_bits(),
            self.inherited_error.as_secs().to_bits(),
            self.drift_bound.as_f64().to_bits(),
            self.base_clock.as_secs().to_bits(),
            self.base_real.as_secs().to_bits(),
            u64::from(self.epoch),
            u64::from(self.serving),
        ]
    }

    /// Rebuilds a payload from its words. `None` when a word violates
    /// a field invariant (non-finite float, negative error, boolean
    /// out of range) — possible only for a corrupted payload, which
    /// the checksum should already have rejected.
    fn from_words(words: &[u64; WORDS]) -> Option<ClockSnapshot> {
        let finite = |w: u64| Some(f64::from_bits(w)).filter(|v| v.is_finite());
        let error = finite(words[1]).filter(|&e| e >= 0.0)?;
        let drift = finite(words[2]).filter(|&d| (0.0..1.0).contains(&d))?;
        if words[5] > u64::from(u32::MAX) || words[6] > 1 {
            return None;
        }
        Some(ClockSnapshot {
            reset_clock: Timestamp::from_secs(finite(words[0])?),
            inherited_error: Duration::from_secs(error),
            drift_bound: DriftRate::new(drift),
            base_clock: Timestamp::from_secs(finite(words[3])?),
            base_real: Timestamp::from_secs(finite(words[4])?),
            epoch: words[5] as u32,
            serving: words[6] == 1,
        })
    }
}

/// Mixes the payload words (and the generation) into a 64-bit
/// checksum — an FNV-1a-style fold with an avalanche finish, strong
/// enough that any cross-generation mix of words fails to verify.
fn mix(words: &[u64; WORDS], generation: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ generation;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h ^= h >> 32;
    h.wrapping_mul(0xd6e8_feb8_6659_fd93)
}

/// The seqlock cell: one writer (the sync core), many readers (the
/// serving front). See the module docs for the ordering argument.
pub struct SnapshotCell {
    /// Even: a coherent payload of generation `seq/2` is published.
    /// Odd: a write is in flight. Zero: nothing published yet.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
    checksum: AtomicU64,
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for SnapshotCell {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotCell {
    /// An empty cell: reads return `None` until the first publish.
    #[must_use]
    pub fn new() -> Self {
        SnapshotCell {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
            checksum: AtomicU64::new(0),
        }
    }

    /// Publishes a new snapshot. Single-writer: only the sync core may
    /// call this, and never concurrently with itself.
    pub fn publish(&self, snapshot: &ClockSnapshot) {
        let words = snapshot.to_words();
        // Odd: write in flight. The RMW is Release so the bump is
        // ordered before the word stores from any reader's viewpoint.
        let prev = self.seq.fetch_add(1, Ordering::Release);
        debug_assert!(
            prev.is_multiple_of(2),
            "concurrent writers on a SnapshotCell"
        );
        let generation = prev / 2 + 1;
        for (slot, &word) in self.words.iter().zip(&words) {
            slot.store(word, Ordering::Relaxed);
        }
        self.checksum
            .store(mix(&words, generation), Ordering::Relaxed);
        // Even successor: payload coherent again.
        self.seq.store(prev + 2, Ordering::Release);
    }

    /// Reads the current snapshot, retrying while a write is in
    /// flight. `None` until the first publish.
    #[must_use]
    pub fn read(&self) -> Option<ClockSnapshot> {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None;
            }
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let mut words = [0u64; WORDS];
            for (word, slot) in words.iter_mut().zip(&self.words) {
                *word = slot.load(Ordering::Relaxed);
            }
            let checksum = self.checksum.load(Ordering::Relaxed);
            // The re-read pairs with the writer's Release stores; only
            // an unchanged even value proves the words are one
            // generation's.
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 != s2 {
                std::hint::spin_loop();
                continue;
            }
            if mix(&words, s1 / 2) != checksum {
                // A torn read the sequence check somehow missed (or a
                // corrupted word): retry, never serve it.
                std::hint::spin_loop();
                continue;
            }
            match ClockSnapshot::from_words(&words) {
                Some(snapshot) => return Some(snapshot),
                None => continue,
            }
        }
    }

    /// The publication count so far (generation of the last coherent
    /// payload).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.seq.load(Ordering::Acquire) / 2
    }
}

/// A cloneable, thread-safe handle for the serving front: reads the
/// publisher's [`SnapshotCell`] without any access to the sync core.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
}

impl SnapshotReader {
    /// Wraps a shared cell.
    #[must_use]
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        SnapshotReader { cell }
    }

    /// The current snapshot, if one has been published.
    #[must_use]
    pub fn read(&self) -> Option<ClockSnapshot> {
        self.cell.read()
    }

    /// One-call serving read: `⟨C, E⟩` at publisher real time
    /// `real_now`, or `None` when nothing is published or the
    /// publisher is not serving.
    #[must_use]
    pub fn serve(&self, real_now: Timestamp) -> Option<TimeEstimate> {
        self.cell.read()?.serve(real_now)
    }

    /// The publication count so far.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn snapshot(r: f64, eps: f64) -> ClockSnapshot {
        ClockSnapshot {
            reset_clock: ts(r),
            inherited_error: dur(eps),
            drift_bound: DriftRate::new(1e-4),
            base_clock: ts(r + 0.25),
            base_real: ts(r + 0.25),
            epoch: 3,
            serving: true,
        }
    }

    #[test]
    fn empty_cell_reads_none() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.read(), None);
        assert_eq!(cell.generation(), 0);
    }

    #[test]
    fn publish_then_read_roundtrips() {
        let cell = SnapshotCell::new();
        let snap = snapshot(100.0, 0.02);
        cell.publish(&snap);
        assert_eq!(cell.read(), Some(snap));
        assert_eq!(cell.generation(), 1);
        let newer = snapshot(110.0, 0.01);
        cell.publish(&newer);
        assert_eq!(cell.read(), Some(newer));
        assert_eq!(cell.generation(), 2);
    }

    #[test]
    fn estimate_matches_error_state_bit_for_bit() {
        let snap = snapshot(1234.5, 0.037);
        let state = ErrorState::new(snap.reset_clock, snap.inherited_error, snap.drift_bound);
        for c in [1234.5, 1234.6, 2000.0, 99999.25] {
            let via_snapshot = snap.estimate_at(ts(c));
            let via_state = state.estimate_at(ts(c));
            assert_eq!(
                via_snapshot.time().as_secs().to_bits(),
                via_state.time().as_secs().to_bits()
            );
            assert_eq!(
                via_snapshot.error().as_secs().to_bits(),
                via_state.error().as_secs().to_bits()
            );
        }
    }

    #[test]
    fn pre_reset_reading_is_clamped_not_panicking() {
        let snap = snapshot(100.0, 0.05);
        let e = snap.estimate_at(ts(99.0));
        assert_eq!(e.time(), ts(100.0));
        assert_eq!(e.error(), dur(0.05));
    }

    #[test]
    fn clock_extrapolates_from_the_publish_base() {
        // Base pair is (C, t) = (100.25, 100.25): rate-1 extrapolation.
        let snap = snapshot(100.0, 0.01);
        assert_eq!(snap.clock_at(ts(100.75)), ts(100.75));
        let served = snap.serve(ts(101.25)).unwrap();
        assert_eq!(served.time(), ts(101.25));
        // E = ε + (C − r)·δ = 0.01 + 1.25·1e-4
        assert!((served.error().as_secs() - (0.01 + 1.25e-4)).abs() < 1e-12);
    }

    #[test]
    fn not_serving_snapshot_refuses() {
        let mut snap = snapshot(50.0, 0.01);
        snap.serving = false;
        assert_eq!(snap.serve(ts(50.5)), None);
        let cell = SnapshotCell::new();
        cell.publish(&snap);
        let reader = SnapshotReader::new(Arc::new(cell));
        assert_eq!(reader.serve(ts(50.5)), None);
        assert!(reader.read().is_some(), "the payload itself stays readable");
    }

    #[test]
    fn reader_handle_clones_share_the_cell() {
        let cell = Arc::new(SnapshotCell::new());
        let reader = SnapshotReader::new(Arc::clone(&cell));
        let clone = reader.clone();
        cell.publish(&snapshot(7.0, 0.001));
        assert_eq!(reader.generation(), 1);
        assert_eq!(clone.read(), reader.read());
    }

    #[test]
    fn corrupted_word_is_rejected_by_the_checksum() {
        let cell = SnapshotCell::new();
        cell.publish(&snapshot(10.0, 0.5));
        // Flip one payload bit behind the seqlock's back; the read loop
        // must not return the corrupted payload. (It would spin forever
        // on it, so probe via a fresh publish restoring coherence.)
        let bad = cell.words[1].load(Ordering::Relaxed) ^ 1;
        cell.words[1].store(bad, Ordering::Relaxed);
        let words: [u64; WORDS] = std::array::from_fn(|i| cell.words[i].load(Ordering::Relaxed));
        assert_ne!(
            mix(&words, cell.generation()),
            cell.checksum.load(Ordering::Relaxed),
            "checksum must detect the flip"
        );
        cell.publish(&snapshot(11.0, 0.25));
        assert_eq!(cell.read().unwrap().reset_clock, ts(11.0));
    }

    #[test]
    fn from_words_rejects_invariant_violations() {
        let good = snapshot(1.0, 0.1).to_words();
        assert!(ClockSnapshot::from_words(&good).is_some());
        for (slot, bad) in [
            (0, f64::NAN.to_bits()),
            (1, (-1.0f64).to_bits()),
            (2, 2.0f64.to_bits()),
            (5, u64::from(u32::MAX) + 1),
            (6, 2),
        ] {
            let mut words = good;
            words[slot] = bad;
            assert!(
                ClockSnapshot::from_words(&words).is_none(),
                "word {slot} = {bad:#x} accepted"
            );
        }
    }
}
