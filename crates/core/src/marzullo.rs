//! The fault-tolerant intersection algorithm ("Marzullo's algorithm").
//!
//! Plain algorithm IM requires *every* interval to share a common point;
//! one faulty server (an interval that excludes real time) makes the
//! whole round inconsistent. The generalisation developed in the
//! companion dissertation [Marzullo 83] — and since adopted, in modified
//! form, by NTP — asks instead for the smallest interval that is
//! contained in the **largest possible number** of source intervals:
//! if at most `f` of `n` sources are faulty, any point covered by
//! `n − f` intervals is a candidate for real time.
//!
//! The implementation is the classic endpoint sweep: each interval
//! contributes a `+1` event at its trailing edge and a `−1` event at its
//! leading edge; sorting the events and scanning keeps a running coverage
//! count whose maxima delimit the best intersections. Runtime is
//! `O(n log n)`.
//!
//! Two query styles are offered:
//!
//! * [`best_intersection`] — the region(s) of maximum coverage (the
//!   dissertation's formulation),
//! * [`intersect_tolerating`] — the hull of all points covered by at
//!   least `n − f` sources, for a caller-chosen fault budget `f` (the
//!   NTP selection rule, which keeps real time inside the answer
//!   whenever at most `f` sources lie), together with
//!   [`smallest_tolerance`] which searches for the minimal `f` that
//!   yields a non-empty answer (the NTP selection loop's shape).

use std::fmt;

use crate::interval::TimeInterval;
use crate::time::Timestamp;

/// A maximal-coverage region found by the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRegion {
    /// The region of the time axis.
    pub interval: TimeInterval,
    /// How many source intervals cover every point of the region.
    pub coverage: usize,
    /// Indices (into the input slice) of the covering intervals.
    pub members: Vec<usize>,
}

/// The result of [`best_intersection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarzulloResult {
    /// All regions achieving the maximum coverage, in time order.
    ///
    /// With correct sources there is exactly one; faulty sources can
    /// split the maximum into several disjoint regions (the ambiguity
    /// Figure 4 of the paper illustrates).
    pub regions: Vec<CoverageRegion>,
    /// The maximum coverage count.
    pub coverage: usize,
}

impl MarzulloResult {
    /// The first (earliest) best region — the conventional single-answer
    /// form of the algorithm.
    #[must_use]
    pub fn best(&self) -> &CoverageRegion {
        &self.regions[0]
    }

    /// `true` if the maximum coverage is achieved by more than one
    /// disjoint region (an ambiguous, partitioned service).
    #[must_use]
    pub fn is_ambiguous(&self) -> bool {
        self.regions.len() > 1
    }
}

impl fmt::Display for MarzulloResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} source(s) agree on {} region(s)",
            self.coverage,
            self.regions.len()
        )
    }
}

/// Edge events for the sweep. At equal offsets, trailing edges sort
/// before leading edges so that closed intervals touching at a point
/// count as overlapping.
fn edge_events(intervals: &[TimeInterval]) -> Vec<(Timestamp, bool)> {
    let mut events = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        events.push((iv.lo(), true)); // trailing edge: coverage += 1
        events.push((iv.hi(), false)); // leading edge: coverage -= 1
    }
    // `false < true`, so sort by (t, !is_start) to put starts first.
    events.sort_by_key(|&(t, is_start)| (t, !is_start));
    events
}

/// Computes the region(s) of maximum coverage among `intervals`.
///
/// Returns `None` when `intervals` is empty.
///
/// ```
/// use tempo_core::{TimeInterval, Timestamp};
/// use tempo_core::marzullo::best_intersection;
///
/// let ts = Timestamp::from_secs;
/// let sources = [
///     TimeInterval::new(ts(8.0), ts(12.0)),
///     TimeInterval::new(ts(11.0), ts(13.0)),
///     TimeInterval::new(ts(14.0), ts(15.0)), // faulty: excludes the others
/// ];
/// let result = best_intersection(&sources).unwrap();
/// assert_eq!(result.coverage, 2);
/// assert_eq!(result.best().interval, TimeInterval::new(ts(11.0), ts(12.0)));
/// assert_eq!(result.best().members, vec![0, 1]);
/// ```
#[must_use]
pub fn best_intersection(intervals: &[TimeInterval]) -> Option<MarzulloResult> {
    if intervals.is_empty() {
        return None;
    }
    let events = edge_events(intervals);

    // Pass 1: the maximum coverage.
    let mut count = 0usize;
    let mut max_coverage = 0usize;
    for &(_, is_start) in &events {
        if is_start {
            count += 1;
            max_coverage = max_coverage.max(count);
        } else {
            count -= 1;
        }
    }

    // Pass 2: extract the maximal regions. A region starts when the
    // count reaches `max_coverage` and ends at the next leading edge.
    let mut regions = Vec::new();
    let mut count = 0usize;
    let mut region_start: Option<Timestamp> = None;
    for &(t, is_start) in &events {
        if is_start {
            count += 1;
            if count == max_coverage {
                region_start = Some(t);
            }
        } else {
            if let Some(start) = region_start.take() {
                let interval = TimeInterval::new(start, t);
                let members = members_of(intervals, &interval);
                regions.push(CoverageRegion {
                    interval,
                    coverage: max_coverage,
                    members,
                });
            }
            count -= 1;
        }
    }
    debug_assert!(!regions.is_empty());
    Some(MarzulloResult {
        regions,
        coverage: max_coverage,
    })
}

/// Indices of the intervals containing every point of `region`.
fn members_of(intervals: &[TimeInterval], region: &TimeInterval) -> Vec<usize> {
    intervals
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.contains_interval(region))
        .map(|(i, _)| i)
        .collect()
}

/// The hull of every point covered by at least `n − max_faulty` of the
/// `n` sources, or `None` when no point achieves that coverage.
///
/// This is the selection rule NTP adopted from the dissertation's
/// algorithm (RFC 5905 §11.2.1): the answer spans from the first point
/// where the running coverage reaches `n − f` to the last point where it
/// drops below `n − f`. The hull form — rather than the earliest
/// maximum-coverage region — is what makes the `f`-tolerance claim true:
/// if at most `f` sources are faulty, real time is covered by the
/// `≥ n − f` correct sources and therefore lies inside the hull. (The
/// maximum-coverage region alone can *exclude* real time when a faulty
/// interval happens to tighten the crowd: three honest `[0,10]` sources
/// plus a faulty `[5,6]` put maximum coverage at `[5,6]`, which misses a
/// real time of 0 even though only one source lied.)
///
/// With `max_faulty == 0` this is the plain IM intersection. When the
/// required coverage is met by several disjoint regions, the hull spans
/// them all — wider, never narrower, than any single region; use
/// [`best_intersection`] to inspect the individual regions and their
/// ambiguity.
///
/// Returns `None` when `max_faulty >= intervals.len()` (tolerating all
/// sources being faulty leaves no evidence to intersect — this covers
/// the empty slice too) and when no point reaches the required coverage.
#[must_use]
pub fn intersect_tolerating(intervals: &[TimeInterval], max_faulty: usize) -> Option<TimeInterval> {
    if max_faulty >= intervals.len() {
        return None;
    }
    let needed = intervals.len() - max_faulty;
    let events = edge_events(intervals);
    let mut count = 0usize;
    let mut lo: Option<Timestamp> = None;
    let mut hi: Option<Timestamp> = None;
    for &(t, is_start) in &events {
        if is_start {
            count += 1;
            if count == needed && lo.is_none() {
                lo = Some(t);
            }
        } else {
            if count == needed {
                // Coverage drops below `needed` here; the last such drop
                // is the hull's trailing edge.
                hi = Some(t);
            }
            count -= 1;
        }
    }
    Some(TimeInterval::new(lo?, hi.expect("every start has an end")))
}

/// Finds the smallest fault budget `f` for which a coverage of `n − f`
/// is achievable, returning `(f, best regions)`.
///
/// This mirrors the search NTP's selection algorithm performs (RFC 5905
/// §11.2.1 steps the assumed number of falsetickers upward until a
/// majority intersection appears).
///
/// Returns `None` when `intervals` is empty.
#[must_use]
pub fn smallest_tolerance(intervals: &[TimeInterval]) -> Option<(usize, MarzulloResult)> {
    let result = best_intersection(intervals)?;
    let f = intervals.len() - result.coverage;
    Some((f, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn iv(lo: f64, hi: f64) -> TimeInterval {
        TimeInterval::new(ts(lo), ts(hi))
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(best_intersection(&[]).is_none());
        assert!(smallest_tolerance(&[]).is_none());
    }

    #[test]
    fn single_interval_is_its_own_best() {
        let result = best_intersection(&[iv(1.0, 2.0)]).unwrap();
        assert_eq!(result.coverage, 1);
        assert_eq!(result.best().interval, iv(1.0, 2.0));
        assert_eq!(result.best().members, vec![0]);
        assert!(!result.is_ambiguous());
    }

    #[test]
    fn all_overlapping_equals_plain_intersection() {
        let sources = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 3);
        assert_eq!(result.best().interval, iv(2.0, 4.0));
        assert_eq!(result.best().members, vec![0, 1, 2]);
        assert_eq!(
            TimeInterval::intersect_all(&sources).unwrap(),
            result.best().interval
        );
    }

    #[test]
    fn one_outlier_is_excluded() {
        let sources = [iv(8.0, 12.0), iv(11.0, 13.0), iv(14.0, 15.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 2);
        assert_eq!(result.best().interval, iv(11.0, 12.0));
        assert_eq!(result.best().members, vec![0, 1]);
    }

    #[test]
    fn classic_ntp_example() {
        // The textbook Marzullo example: [8,12], [11,13], [10,12] →
        // [11,12] with 3 sources agreeing.
        let sources = [iv(8.0, 12.0), iv(11.0, 13.0), iv(10.0, 12.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 3);
        assert_eq!(result.best().interval, iv(11.0, 12.0));
    }

    #[test]
    fn touching_intervals_count_as_overlap() {
        let sources = [iv(0.0, 5.0), iv(5.0, 10.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 2);
        assert_eq!(result.best().interval, TimeInterval::point(ts(5.0)));
    }

    #[test]
    fn ambiguous_maximum_reports_all_regions() {
        // Two pairs agree in two disjoint places (Figure 4's flavour).
        let sources = [iv(0.0, 2.0), iv(1.0, 3.0), iv(10.0, 12.0), iv(11.0, 13.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 2);
        assert!(result.is_ambiguous());
        assert_eq!(result.regions.len(), 2);
        assert_eq!(result.regions[0].interval, iv(1.0, 2.0));
        assert_eq!(result.regions[0].members, vec![0, 1]);
        assert_eq!(result.regions[1].interval, iv(11.0, 12.0));
        assert_eq!(result.regions[1].members, vec![2, 3]);
    }

    #[test]
    fn identical_intervals_all_agree() {
        let sources = [iv(1.0, 2.0); 5];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 5);
        assert_eq!(result.best().interval, iv(1.0, 2.0));
        assert_eq!(result.best().members, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn point_intervals() {
        let sources = [TimeInterval::point(ts(1.0)), TimeInterval::point(ts(1.0))];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 2);
        assert_eq!(result.best().interval.width(), Duration::ZERO);
    }

    #[test]
    fn tolerating_zero_faults_is_plain_intersection() {
        let sources = [iv(0.0, 4.0), iv(1.0, 5.0)];
        assert_eq!(intersect_tolerating(&sources, 0), Some(iv(1.0, 4.0)));
        let disjoint = [iv(0.0, 1.0), iv(2.0, 3.0)];
        assert_eq!(intersect_tolerating(&disjoint, 0), None);
    }

    #[test]
    fn tolerating_one_fault_recovers() {
        let sources = [iv(8.0, 12.0), iv(11.0, 13.0), iv(14.0, 15.0)];
        assert_eq!(intersect_tolerating(&sources, 0), None);
        assert_eq!(intersect_tolerating(&sources, 1), Some(iv(11.0, 12.0)));
    }

    #[test]
    fn tolerance_requirement_not_met() {
        // Three mutually disjoint intervals: max coverage 1, so even
        // f = 1 (needing 2) fails. With f = 2 a single source suffices
        // and the hull spans all three disjoint regions.
        let sources = [iv(0.0, 1.0), iv(2.0, 3.0), iv(4.0, 5.0)];
        assert_eq!(intersect_tolerating(&sources, 1), None);
        assert_eq!(intersect_tolerating(&sources, 2), Some(iv(0.0, 5.0)));
    }

    #[test]
    fn tolerating_everything_is_none() {
        // f ≥ n leaves no evidence to intersect: explicitly None, for
        // every n including the empty slice.
        let sources = [iv(0.0, 1.0)];
        assert_eq!(intersect_tolerating(&sources, 1), None);
        assert_eq!(intersect_tolerating(&sources, 99), None);
        let three = [iv(0.0, 1.0), iv(0.5, 2.0), iv(1.0, 3.0)];
        assert_eq!(intersect_tolerating(&three, 3), None);
        assert_eq!(intersect_tolerating(&[], 0), None);
        assert_eq!(intersect_tolerating(&[], 5), None);
    }

    #[test]
    fn hull_contains_real_time_despite_tight_liar() {
        // Three honest sources span [0,10] with real time at the very
        // edge (t = 0); one liar claims the tight [5,6]. Maximum coverage
        // (4) sits at [5,6], which excludes t — but the f = 1 hull only
        // needs coverage 3, which t enjoys from the honest sources.
        let sources = [iv(0.0, 10.0), iv(0.0, 10.0), iv(0.0, 10.0), iv(5.0, 6.0)];
        let hull = intersect_tolerating(&sources, 1).unwrap();
        assert!(hull.contains(ts(0.0)), "hull {hull:?} must keep real time");
        assert_eq!(hull, iv(0.0, 10.0));
    }

    #[test]
    fn smallest_tolerance_counts_outliers() {
        let sources = [iv(8.0, 12.0), iv(11.0, 13.0), iv(14.0, 15.0)];
        let (f, result) = smallest_tolerance(&sources).unwrap();
        assert_eq!(f, 1);
        assert_eq!(result.coverage, 2);

        let healthy = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)];
        let (f, _) = smallest_tolerance(&healthy).unwrap();
        assert_eq!(f, 0);
    }

    #[test]
    fn nested_intervals_best_is_innermost() {
        let sources = [iv(0.0, 10.0), iv(2.0, 8.0), iv(4.0, 6.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 3);
        assert_eq!(result.best().interval, iv(4.0, 6.0));
    }

    #[test]
    fn coverage_region_members_exclude_partial_coverers() {
        // An interval that covers part of the best region but not all of
        // it is not a member (membership = covers the whole region).
        let sources = [iv(0.0, 10.0), iv(0.0, 10.0), iv(9.0, 20.0)];
        let result = best_intersection(&sources).unwrap();
        assert_eq!(result.coverage, 3);
        assert_eq!(result.best().interval, iv(9.0, 10.0));
        assert_eq!(result.best().members, vec![0, 1, 2]);
    }

    #[test]
    fn display_is_informative() {
        let result = best_intersection(&[iv(0.0, 1.0)]).unwrap();
        let s = result.to_string();
        assert!(s.contains("1 source"));
        assert!(s.contains("1 region"));
    }

    #[test]
    fn large_random_input_invariants() {
        // Deterministic pseudo-random intervals; check sweep invariants
        // against a brute-force point check.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        let sources: Vec<TimeInterval> = (0..64)
            .map(|_| {
                let lo = next() * 100.0;
                let w = next() * 20.0;
                iv(lo, lo + w)
            })
            .collect();
        let result = best_intersection(&sources).unwrap();
        // Brute force: coverage at the midpoint of the best region must
        // equal the reported maximum, and no sampled point may beat it.
        let mid = result.best().interval.midpoint();
        let cover_at = |t: Timestamp| sources.iter().filter(|iv| iv.contains(t)).count();
        assert_eq!(cover_at(mid), result.coverage);
        for i in 0..=1000 {
            let t = ts(f64::from(i) * 0.12);
            assert!(cover_at(t) <= result.coverage);
        }
    }
}
