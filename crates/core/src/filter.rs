//! Sample filtering, clustering, and combining — the NTP-lineage
//! post-processing that grew out of this paper's framework.
//!
//! The paper's reference [Mills 81] measured time over DCNET with
//! per-sample round-trip delays; modern NTP refines that into three
//! stages which compose naturally with the interval algorithms here:
//!
//! 1. **clock filter** ([`ClockFilter`]): of the last few
//!    (offset, delay) samples from one peer, trust the one with the
//!    smallest delay — delay and offset error are correlated because
//!    the asymmetric part of the delay is what corrupts the offset;
//! 2. **cluster** ([`cluster`]): among peers, iteratively discard the
//!    one whose offset is the worst outlier relative to the others
//!    (selection jitter exceeding its own sample jitter);
//! 3. **combine** ([`combine`]): average the survivors' offsets,
//!    weighted by inverse error.
//!
//! None of this replaces the correctness machinery of algorithms MM/IM
//! — filtering improves *precision* by choosing good samples, while the
//! intervals guarantee *correctness* bounds.

use std::collections::VecDeque;

use crate::time::{Duration, Timestamp};

/// One peer measurement: the apparent offset of the remote clock and
/// the round-trip delay of the exchange that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterSample {
    /// Apparent remote-minus-local clock offset.
    pub offset: Duration,
    /// Round-trip delay of the measurement.
    pub delay: Duration,
    /// When (on the local clock) the sample was taken.
    pub at: Timestamp,
}

impl FilterSample {
    /// Creates a sample.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    #[must_use]
    pub fn new(offset: Duration, delay: Duration, at: Timestamp) -> Self {
        assert!(!delay.is_negative(), "delay must be non-negative");
        FilterSample { offset, delay, at }
    }
}

/// A sliding window of samples from one peer; the best sample is the
/// minimum-delay one.
///
/// ```
/// use tempo_core::filter::{ClockFilter, FilterSample};
/// use tempo_core::{Duration, Timestamp};
///
/// let mut f = ClockFilter::new(8);
/// for (off, d) in [(0.010, 0.050), (0.002, 0.004), (0.030, 0.090)] {
///     f.push(FilterSample::new(
///         Duration::from_secs(off),
///         Duration::from_secs(d),
///         Timestamp::ZERO,
///     ));
/// }
/// // The 4 ms-delay sample wins: lowest delay, most trustworthy offset.
/// assert_eq!(f.best().unwrap().offset, Duration::from_secs(0.002));
/// ```
#[derive(Debug, Clone)]
pub struct ClockFilter {
    window: VecDeque<FilterSample>,
    capacity: usize,
}

impl ClockFilter {
    /// Creates a filter keeping the most recent `capacity` samples
    /// (NTP uses 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        ClockFilter {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` when no samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Adds a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: FilterSample) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(sample);
    }

    /// The minimum-delay sample, if any.
    #[must_use]
    pub fn best(&self) -> Option<FilterSample> {
        self.window.iter().min_by_key(|s| s.delay).copied()
    }

    /// Sample jitter: RMS difference of the window's offsets from the
    /// best sample's offset. Zero with fewer than two samples.
    #[must_use]
    pub fn jitter(&self) -> Duration {
        let Some(best) = self.best() else {
            return Duration::ZERO;
        };
        if self.window.len() < 2 {
            return Duration::ZERO;
        }
        let sum_sq: f64 = self
            .window
            .iter()
            .map(|s| (s.offset - best.offset).as_secs().powi(2))
            .sum();
        Duration::from_secs((sum_sq / (self.window.len() - 1) as f64).sqrt())
    }

    /// Iterates over the retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FilterSample> {
        self.window.iter()
    }
}

/// One peer as seen by the cluster/combine stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerEstimate {
    /// The peer's filtered offset.
    pub offset: Duration,
    /// The peer's own sample jitter (from its [`ClockFilter`]).
    pub jitter: Duration,
    /// The peer's error bound (used as the combine weight).
    pub error: Duration,
}

impl PeerEstimate {
    /// Creates a peer estimate.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` or `error` is negative.
    #[must_use]
    pub fn new(offset: Duration, jitter: Duration, error: Duration) -> Self {
        assert!(!jitter.is_negative(), "jitter must be non-negative");
        assert!(!error.is_negative(), "error must be non-negative");
        PeerEstimate {
            offset,
            jitter,
            error,
        }
    }
}

/// RMS distance of `peers[i].offset` from every other survivor's offset
/// — NTP's *selection jitter*.
fn selection_jitter(peers: &[PeerEstimate], survivors: &[usize], i: usize) -> f64 {
    let me = peers[i].offset.as_secs();
    let others: Vec<f64> = survivors
        .iter()
        .filter(|&&j| j != i)
        .map(|&j| (peers[j].offset.as_secs() - me).powi(2))
        .collect();
    if others.is_empty() {
        0.0
    } else {
        (others.iter().sum::<f64>() / others.len() as f64).sqrt()
    }
}

/// The NTP cluster algorithm: iteratively removes the survivor whose
/// selection jitter is both the largest and exceeds its own sample
/// jitter, stopping at `min_survivors`.
///
/// Returns surviving indices into `peers`, ascending.
///
/// ```
/// use tempo_core::filter::{cluster, PeerEstimate};
/// use tempo_core::Duration;
///
/// let s = |o: f64| PeerEstimate::new(
///     Duration::from_secs(o),
///     Duration::from_secs(0.001),
///     Duration::from_secs(0.01),
/// );
/// // Three agree near zero, one sits 500 ms away.
/// let peers = [s(0.001), s(-0.002), s(0.000), s(0.5)];
/// assert_eq!(cluster(&peers, 3), vec![0, 1, 2]);
/// ```
///
/// # Panics
///
/// Panics if `min_survivors` is zero.
#[must_use]
pub fn cluster(peers: &[PeerEstimate], min_survivors: usize) -> Vec<usize> {
    assert!(min_survivors > 0, "must keep at least one survivor");
    let mut survivors: Vec<usize> = (0..peers.len()).collect();
    while survivors.len() > min_survivors {
        // Find the survivor with the worst selection jitter.
        let (pos, &idx) = survivors
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                selection_jitter(peers, &survivors, a)
                    .total_cmp(&selection_jitter(peers, &survivors, b))
            })
            .expect("survivors non-empty");
        let sel = selection_jitter(peers, &survivors, idx);
        // Keep it if its scatter among peers is within its own noise —
        // removing it would not improve the ensemble.
        if sel <= peers[idx].jitter.as_secs() {
            break;
        }
        survivors.remove(pos);
    }
    survivors
}

/// Combines survivors into one offset, weighting each peer by the
/// inverse of its error bound (a zero-error peer dominates; all-zero
/// errors fall back to the unweighted mean).
///
/// Returns `None` when `survivors` selects nothing.
#[must_use]
pub fn combine(peers: &[PeerEstimate], survivors: &[usize]) -> Option<Duration> {
    if survivors.is_empty() {
        return None;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for &i in survivors {
        let err = peers[i].error.as_secs();
        let weight = if err > 0.0 { 1.0 / err } else { f64::INFINITY };
        if weight.is_infinite() {
            // Exact peers dominate: average only the zero-error ones.
            let exact: Vec<f64> = survivors
                .iter()
                .filter(|&&j| peers[j].error == Duration::ZERO)
                .map(|&j| peers[j].offset.as_secs())
                .collect();
            return Some(Duration::from_secs(
                exact.iter().sum::<f64>() / exact.len() as f64,
            ));
        }
        num += peers[i].offset.as_secs() * weight;
        den += weight;
    }
    if den == 0.0 {
        // All weights zero cannot happen (err > 0 ⇒ weight > 0), but
        // guard for the degenerate no-information case.
        let mean = survivors
            .iter()
            .map(|&i| peers[i].offset.as_secs())
            .sum::<f64>()
            / survivors.len() as f64;
        return Some(Duration::from_secs(mean));
    }
    Some(Duration::from_secs(num / den))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn sample(off: f64, delay: f64, at: f64) -> FilterSample {
        FilterSample::new(dur(off), dur(delay), Timestamp::from_secs(at))
    }

    #[test]
    fn empty_filter() {
        let f = ClockFilter::new(8);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.best(), None);
        assert_eq!(f.jitter(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ClockFilter::new(0);
    }

    #[test]
    fn best_is_minimum_delay() {
        let mut f = ClockFilter::new(8);
        f.push(sample(0.010, 0.050, 0.0));
        f.push(sample(0.002, 0.004, 1.0));
        f.push(sample(0.030, 0.090, 2.0));
        let best = f.best().unwrap();
        assert_eq!(best.delay, dur(0.004));
        assert_eq!(best.offset, dur(0.002));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut f = ClockFilter::new(2);
        f.push(sample(0.0, 0.001, 0.0)); // will be evicted
        f.push(sample(0.1, 0.010, 1.0));
        f.push(sample(0.2, 0.020, 2.0));
        assert_eq!(f.len(), 2);
        // The 1 ms sample is gone; best is now the 10 ms one.
        assert_eq!(f.best().unwrap().delay, dur(0.010));
        let ats: Vec<f64> = f.iter().map(|s| s.at.as_secs()).collect();
        assert_eq!(ats, vec![1.0, 2.0]);
    }

    #[test]
    fn jitter_measures_offset_scatter() {
        let mut f = ClockFilter::new(8);
        f.push(sample(0.0, 0.001, 0.0));
        assert_eq!(f.jitter(), Duration::ZERO); // single sample
        f.push(sample(0.003, 0.002, 1.0));
        f.push(sample(-0.003, 0.003, 2.0));
        let j = f.jitter().as_secs();
        // RMS of {0.003, −0.003} relative to the best (offset 0).
        assert!((j - 0.003).abs() < 1e-12, "jitter {j}");
    }

    #[test]
    fn delay_offset_correlation_story() {
        // A queueing spike corrupts the offset; the filter rides it out.
        let mut f = ClockFilter::new(8);
        f.push(sample(0.001, 0.004, 0.0)); // clean
        for k in 1..=5 {
            // Congested samples: big delays, offsets dragged by the
            // asymmetry.
            f.push(sample(0.040, 0.100, f64::from(k)));
        }
        assert_eq!(f.best().unwrap().offset, dur(0.001));
    }

    #[test]
    #[should_panic(expected = "delay must be non-negative")]
    fn negative_delay_rejected() {
        let _ = sample(0.0, -0.1, 0.0);
    }

    #[test]
    fn cluster_drops_the_outlier() {
        // The honest peers scatter by a few ms, which their claimed
        // jitter covers; the 0.5 s outlier does not survive.
        let p = |o: f64| PeerEstimate::new(dur(o), dur(0.005), dur(0.01));
        let peers = [p(0.001), p(-0.002), p(0.000), p(0.5)];
        assert_eq!(cluster(&peers, 1), vec![0, 1, 2]);
    }

    #[test]
    fn cluster_prunes_to_min_when_noise_is_underclaimed() {
        // If peers claim implausibly small jitter, their mutual scatter
        // looks significant and pruning continues to the floor.
        let p = |o: f64| PeerEstimate::new(dur(o), dur(1e-6), dur(0.01));
        let peers = [p(0.001), p(-0.002), p(0.000), p(0.5)];
        let survivors = cluster(&peers, 1);
        assert!(!survivors.contains(&3));
        assert!(!survivors.is_empty());
    }

    #[test]
    fn cluster_keeps_agreeing_peers() {
        let p = |o: f64| PeerEstimate::new(dur(o), dur(0.005), dur(0.01));
        // All within each other's jitter: nobody is discarded.
        let peers = [p(0.001), p(-0.001), p(0.002), p(0.000)];
        assert_eq!(cluster(&peers, 1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cluster_respects_min_survivors() {
        let p = |o: f64| PeerEstimate::new(dur(o), dur(1e-6), dur(0.01));
        // Wildly scattered peers, but we must keep 3.
        let peers = [p(0.0), p(1.0), p(2.0), p(3.0)];
        assert_eq!(cluster(&peers, 3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one survivor")]
    fn cluster_zero_min_rejected() {
        let _ = cluster(&[], 0);
    }

    #[test]
    fn combine_weights_by_inverse_error() {
        let peers = [
            PeerEstimate::new(dur(0.0), dur(0.0), dur(0.01)), // weight 100
            PeerEstimate::new(dur(0.3), dur(0.0), dur(0.03)), // weight 33.3
        ];
        let combined = combine(&peers, &[0, 1]).unwrap().as_secs();
        // (0·100 + 0.3·33.33) / 133.33 = 0.075
        assert!((combined - 0.075).abs() < 1e-9, "combined {combined}");
    }

    #[test]
    fn combine_exact_peer_dominates() {
        let peers = [
            PeerEstimate::new(dur(0.5), dur(0.0), dur(0.01)),
            PeerEstimate::new(dur(0.1), dur(0.0), Duration::ZERO),
            PeerEstimate::new(dur(0.2), dur(0.0), Duration::ZERO),
        ];
        // The two zero-error peers average; the noisy one is ignored.
        let combined = combine(&peers, &[0, 1, 2]).unwrap().as_secs();
        assert!((combined - 0.15).abs() < 1e-12);
    }

    #[test]
    fn combine_empty_is_none() {
        assert_eq!(combine(&[], &[]), None);
    }

    #[test]
    fn full_pipeline() {
        // Four peers, each with its own filter window; one peer's clock
        // is broken. Filter → cluster → combine lands near the honest
        // offset.
        let mut filters = vec![ClockFilter::new(8); 4];
        let true_offsets = [0.002, -0.001, 0.001, 0.8]; // peer 3 broken
        for (i, f) in filters.iter_mut().enumerate() {
            for k in 0..8 {
                let noise = f64::from(k % 3) * 1e-3;
                f.push(sample(
                    true_offsets[i] + noise,
                    0.002 + noise * 10.0,
                    f64::from(k),
                ));
            }
        }
        let peers: Vec<PeerEstimate> = filters
            .iter()
            .map(|f| {
                let best = f.best().unwrap();
                PeerEstimate::new(best.offset, f.jitter(), best.delay)
            })
            .collect();
        let survivors = cluster(&peers, 1);
        assert!(!survivors.contains(&3), "the broken peer must be discarded");
        let combined = combine(&peers, &survivors).unwrap().as_secs();
        assert!(combined.abs() < 0.005, "combined offset {combined}");
    }
}
