//! # tempo-core
//!
//! Interval-based clock synchronization: a faithful implementation of the
//! algorithms in Keith Marzullo and Susan Owicki, *Maintaining the Time in
//! a Distributed System* (Stanford CSL TR 83-247 / PODC 1983).
//!
//! The paper models a time server as a clock `C_i(t)` with a known maximum
//! drift rate `δ_i`, an inherited error `ε_i`, and the clock value `r_i` at
//! its last reset, so that the server can always report the pair
//! `⟨C_i(t), E_i(t)⟩` with
//!
//! ```text
//! E_i(t) = ε_i + (C_i(t) − r_i) · δ_i          (rule MM-1 / IM-1)
//! ```
//!
//! The pair is an *interval* `[C_i − E_i, C_i + E_i]` that is **correct**
//! when it contains real time. This crate provides:
//!
//! * [`Timestamp`], [`Duration`], [`DriftRate`] — validated time newtypes,
//! * [`TimeInterval`] — closed-interval algebra (intersection, width, …),
//! * [`TimeEstimate`] and [`ErrorState`] — the ⟨C, E⟩ pairs and the MM-1
//!   error-growth rule,
//! * [`sync::mm`] — algorithm **MM** (*minimization of maximum error*),
//! * [`sync::im`] — algorithm **IM** (*intersection*),
//! * [`sync::baseline`] — the Lamport max / median / mean comparators,
//! * [`bounds`] — the theorems' bound formulas as named functions,
//! * [`marzullo`] — the fault-tolerant generalisation of IM from
//!   [Marzullo 83] (the ancestor of NTP's clock-select),
//! * [`ntp`] — an RFC-5905-style selection built on the same sweep,
//! * [`consistency`] — pairwise consistency and consistency groups (§5),
//! * [`consonance`] — the same machinery applied to clock *rates* (§5),
//! * [`snapshot`] — the seqlock-published `(r, ε, δ)` serving snapshot
//!   behind the lock-free read path.
//!
//! All functions here are pure: they map an observed set of replies to a
//! decision. Driving them over a simulated network is the job of the
//! `tempo-service` and `tempo-sim` crates.
//!
//! ## Quick example
//!
//! Intersecting three server replies with algorithm IM:
//!
//! ```
//! use tempo_core::{Duration, Timestamp, TimeEstimate, DriftRate};
//! use tempo_core::sync::TimedReply;
//! use tempo_core::sync::im::{im_round, ImOutcome};
//!
//! let own = TimeEstimate::new(Timestamp::from_secs(100.0), Duration::from_secs(0.5));
//! let delta = DriftRate::new(1e-5);
//! let replies = vec![
//!     TimedReply::new(
//!         TimeEstimate::new(Timestamp::from_secs(100.2), Duration::from_secs(0.3)),
//!         Duration::from_secs(0.01),
//!     ),
//!     TimedReply::new(
//!         TimeEstimate::new(Timestamp::from_secs(99.9), Duration::from_secs(0.4)),
//!         Duration::from_secs(0.02),
//!     ),
//! ];
//! match im_round(&own, delta, &replies) {
//!     ImOutcome::Reset(reset) => {
//!         // The derived interval is never wider than the narrowest input
//!         assert!(reset.new_error <= Duration::from_secs(0.3 + 0.02 * (1.0 + 1e-5) / 2.0 + 1e-9));
//!     }
//!     ImOutcome::Inconsistent => unreachable!("these intervals intersect"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod consistency;
pub mod consonance;
pub mod estimate;
pub mod filter;
pub mod interval;
pub mod marzullo;
pub mod nanos;
pub mod ntp;
pub mod offset;
pub mod snapshot;
pub mod sync;
pub mod time;

pub use estimate::{ErrorState, TimeEstimate};
pub use interval::TimeInterval;
pub use snapshot::{ClockSnapshot, SnapshotCell, SnapshotReader};
pub use time::{DriftRate, Duration, Timestamp};
