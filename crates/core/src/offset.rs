//! Four-timestamp offset/delay measurement.
//!
//! The paper's protocol replies with `⟨C, E⟩` and charges the whole
//! round-trip to the error budget. Its reference [Mills 81] measures
//! more sharply: with the request-send, request-receive, reply-send,
//! and reply-receive timestamps
//!
//! ```text
//! T1 — request leaves the client   (client clock)
//! T2 — request reaches the server  (server clock)
//! T3 — reply leaves the server     (server clock)
//! T4 — reply reaches the client    (client clock)
//! ```
//!
//! the apparent clock offset and the path delay are
//!
//! ```text
//! θ = ((T2 − T1) + (T3 − T4)) / 2        δ = (T4 − T1) − (T3 − T2)
//! ```
//!
//! `θ` is exact when the outbound and return delays are equal; an
//! asymmetry of `a` seconds biases it by at most `a/2 ≤ δ/2` — which is
//! why the [`crate::filter::ClockFilter`] prefers minimum-delay samples.

use std::fmt;

use crate::time::{Duration, Timestamp};

/// The four timestamps of one request/reply exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourTimestamps {
    /// Request transmission, client clock.
    pub t1: Timestamp,
    /// Request reception, server clock.
    pub t2: Timestamp,
    /// Reply transmission, server clock.
    pub t3: Timestamp,
    /// Reply reception, client clock.
    pub t4: Timestamp,
}

impl FourTimestamps {
    /// Packages the four timestamps of an exchange.
    ///
    /// # Panics
    ///
    /// Panics if either clock runs backward within the exchange
    /// (`t4 < t1` or `t3 < t2`).
    #[must_use]
    pub fn new(t1: Timestamp, t2: Timestamp, t3: Timestamp, t4: Timestamp) -> Self {
        assert!(t4 >= t1, "reply received before the request was sent");
        assert!(t3 >= t2, "reply sent before the request arrived");
        FourTimestamps { t1, t2, t3, t4 }
    }

    /// The apparent server-minus-client clock offset
    /// `θ = ((T2 − T1) + (T3 − T4)) / 2`.
    #[must_use]
    pub fn offset(&self) -> Duration {
        ((self.t2 - self.t1) + (self.t3 - self.t4)).half()
    }

    /// The round-trip path delay `δ = (T4 − T1) − (T3 − T2)` (the
    /// exchange duration minus the server's processing time).
    #[must_use]
    pub fn delay(&self) -> Duration {
        (self.t4 - self.t1) - (self.t3 - self.t2)
    }

    /// The server's processing time `T3 − T2`.
    #[must_use]
    pub fn processing(&self) -> Duration {
        self.t3 - self.t2
    }

    /// The worst-case error of [`FourTimestamps::offset`] from path
    /// asymmetry: half the path delay.
    #[must_use]
    pub fn offset_uncertainty(&self) -> Duration {
        self.delay().half().abs()
    }
}

impl fmt::Display for FourTimestamps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ = {}, δ = {}", self.offset(), self.delay())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn symmetric_path_measures_exact_offset() {
        // Server clock 0.5 s ahead; 10 ms each way; no processing time.
        // T1=100 (client), request arrives at real 100.01 → server reads
        // 100.51; reply arrives at client at 100.02.
        let four = FourTimestamps::new(ts(100.0), ts(100.51), ts(100.51), ts(100.02));
        assert!((four.offset().as_secs() - 0.5).abs() < 1e-12);
        assert!((four.delay().as_secs() - 0.02).abs() < 1e-12);
        assert_eq!(four.processing(), Duration::ZERO);
    }

    #[test]
    fn processing_time_is_subtracted_from_delay() {
        // Same as above but the server takes 5 ms to answer.
        let four = FourTimestamps::new(ts(100.0), ts(100.51), ts(100.515), ts(100.025));
        assert!((four.delay().as_secs() - 0.02).abs() < 1e-12);
        assert!((four.processing().as_secs() - 0.005).abs() < 1e-12);
        // Offset unchanged by symmetric processing.
        assert!((four.offset().as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_bias_is_bounded_by_half_delay() {
        // 20 ms out, 0 ms back: the offset is biased by 10 ms — exactly
        // the uncertainty bound.
        let true_offset = 0.5;
        let four = FourTimestamps::new(
            ts(100.0),
            ts(100.0 + 0.020 + true_offset),
            ts(100.0 + 0.020 + true_offset),
            ts(100.020),
        );
        let bias = (four.offset().as_secs() - true_offset).abs();
        assert!((bias - 0.010).abs() < 1e-12);
        assert!(bias <= four.offset_uncertainty().as_secs() + 1e-12);
    }

    #[test]
    fn negative_offset_for_slow_server() {
        let four = FourTimestamps::new(ts(100.0), ts(99.51), ts(99.51), ts(100.02));
        assert!((four.offset().as_secs() + 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before the request was sent")]
    fn client_clock_must_not_regress() {
        let _ = FourTimestamps::new(ts(100.0), ts(100.0), ts(100.0), ts(99.0));
    }

    #[test]
    #[should_panic(expected = "before the request arrived")]
    fn server_clock_must_not_regress() {
        let _ = FourTimestamps::new(ts(100.0), ts(101.0), ts(100.5), ts(100.1));
    }

    #[test]
    fn display() {
        let four = FourTimestamps::new(ts(0.0), ts(0.0), ts(0.0), ts(0.0));
        let s = four.to_string();
        assert!(s.contains('θ') && s.contains('δ'));
    }
}
