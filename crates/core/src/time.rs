//! Validated time newtypes: [`Timestamp`], [`Duration`], and [`DriftRate`].
//!
//! The paper's analysis works in real numbers; we represent time as `f64`
//! seconds wrapped in newtypes so that instants, spans, and drift rates
//! cannot be confused ([C-NEWTYPE]). Constructors reject non-finite values,
//! which makes the total order (`Ord`) well-defined.
//!
//! * [`Timestamp`] — an instant, either on the real-time axis or a clock
//!   reading (the paper uses the same units for both; `tempo` keeps the
//!   distinction in variable names and documentation).
//! * [`Duration`] — a *signed* span of time. Signed because the algorithms
//!   constantly work with relative offsets (`C_j − C_i` may be negative).
//! * [`DriftRate`] — a claimed bound `δ` on `|1 − dC/dt|`, dimensionless,
//!   constrained to `0 ≤ δ < 1` as required by Theorems 2–4.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An instant in time, in seconds since an arbitrary epoch.
///
/// A `Timestamp` may denote *real* time `t` or a clock reading `C_i(t)`;
/// the algorithms treat both as points on the same axis.
///
/// ```
/// use tempo_core::{Timestamp, Duration};
///
/// let t0 = Timestamp::from_secs(10.0);
/// let t1 = t0 + Duration::from_secs(2.5);
/// assert_eq!(t1 - t0, Duration::from_secs(2.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(Finite);

/// A signed span of time in seconds.
///
/// ```
/// use tempo_core::Duration;
///
/// let d = Duration::from_secs(-1.5);
/// assert_eq!(d.abs(), Duration::from_secs(1.5));
/// assert!(d < Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(Finite);

/// A claimed upper bound `δ` on a clock's drift: `|1 − dC/dt| ≤ δ`.
///
/// Dimensionless (seconds of drift per second of real time). The paper's
/// theorems require `0 ≤ δ < 1`; the constructor enforces this. Note that a
/// `DriftRate` is a *claim* — a simulated clock's actual rate may violate
/// it, which is exactly the failure mode studied in §3 and §5 of the paper.
///
/// ```
/// use tempo_core::DriftRate;
///
/// let delta = DriftRate::new(2.0 / 86_400.0); // two seconds per day
/// assert!(delta.as_f64() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct DriftRate(Finite);

/// A finite `f64` with a total order. Internal building block for the
/// public newtypes; the invariant (finiteness) is established at every
/// construction site in this module.
#[derive(Debug, Clone, Copy, Default)]
struct Finite(f64);

impl PartialEq for Finite {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Finite {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Finite f64s have a canonical bit pattern except for -0.0; fold
        // -0.0 onto +0.0 so that `a == b` implies equal hashes.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

fn expect_finite(value: f64, what: &str) -> Finite {
    assert!(value.is_finite(), "{what} must be finite, got {value}");
    Finite(value)
}

impl Timestamp {
    /// The epoch (zero seconds).
    pub const ZERO: Timestamp = Timestamp(Finite(0.0));

    /// Creates a timestamp from seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or infinite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Timestamp(expect_finite(secs, "timestamp"))
    }

    /// Returns the timestamp as seconds since the epoch.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 .0
    }

    /// Returns the earlier of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Midpoint between two timestamps, robust against overflow.
    #[must_use]
    pub fn midpoint(self, other: Self) -> Self {
        Timestamp::from_secs(self.as_secs() + (other.as_secs() - self.as_secs()) / 2.0)
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(Finite(0.0));

    /// Creates a duration from (possibly negative) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or infinite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Duration(expect_finite(secs, "duration"))
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is NaN or infinite.
    #[must_use]
    pub fn from_millis(millis: f64) -> Self {
        Duration::from_secs(millis / 1_000.0)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is NaN or infinite.
    #[must_use]
    pub fn from_micros(micros: f64) -> Self {
        Duration::from_secs(micros / 1_000_000.0)
    }

    /// Returns the span in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 .0
    }

    /// Returns the span in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.as_secs() * 1_000.0
    }

    /// Absolute value of the span.
    #[must_use]
    pub fn abs(self) -> Self {
        Duration::from_secs(self.as_secs().abs())
    }

    /// Returns the shorter of `self` and `other` (signed comparison).
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the longer of `self` and `other` (signed comparison).
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `true` if the span is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.as_secs() < 0.0
    }

    /// Half of the span, useful when converting interval widths to radii.
    #[must_use]
    pub fn half(self) -> Self {
        Duration::from_secs(self.as_secs() / 2.0)
    }
}

impl DriftRate {
    /// A perfect clock: zero drift.
    pub const ZERO: DriftRate = DriftRate(Finite(0.0));

    /// Creates a drift-rate bound.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is NaN, infinite, negative, or `>= 1` — the
    /// theorems of the paper require `0 ≤ δ < 1`.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "drift rate must satisfy 0 <= rate < 1, got {rate}"
        );
        DriftRate(Finite(rate))
    }

    /// Creates a drift rate from a "seconds per day" specification, the
    /// way operators of the Xerox internet stated clock quality.
    ///
    /// ```
    /// use tempo_core::DriftRate;
    /// let d = DriftRate::per_day(1.0); // one second per day
    /// assert!((d.as_f64() - 1.157e-5).abs() < 1e-8);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DriftRate::new`].
    #[must_use]
    pub fn per_day(seconds_per_day: f64) -> Self {
        DriftRate::new(seconds_per_day / 86_400.0)
    }

    /// The bound as a plain `f64`.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 .0
    }

    /// `(1 + δ)` — the factor by which a local round-trip measurement must
    /// be inflated to bound the real elapsed time (equation 1 in the
    /// paper).
    #[must_use]
    pub fn inflation(self) -> f64 {
        1.0 + self.as_f64()
    }
}

// --- Timestamp arithmetic ------------------------------------------------

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp::from_secs(self.as_secs() + rhs.as_secs())
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp::from_secs(self.as_secs() - rhs.as_secs())
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Sub for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        Duration::from_secs(self.as_secs() - rhs.as_secs())
    }
}

// --- Duration arithmetic --------------------------------------------------

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration::from_secs(self.as_secs() + rhs.as_secs())
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration::from_secs(self.as_secs() - rhs.as_secs())
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Neg for Duration {
    type Output = Duration;

    fn neg(self) -> Duration {
        Duration::from_secs(-self.as_secs())
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;

    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs(self.as_secs() * rhs)
    }
}

impl Mul<Duration> for f64 {
    type Output = Duration;

    fn mul(self, rhs: Duration) -> Duration {
        rhs * self
    }
}

impl Mul<DriftRate> for Duration {
    type Output = Duration;

    /// Error accumulated over this span by a clock with drift bound `δ`:
    /// `s · δ` in the paper's notation.
    fn mul(self, rhs: DriftRate) -> Duration {
        Duration::from_secs(self.as_secs() * rhs.as_f64())
    }
}

impl Div<f64> for Duration {
    type Output = Duration;

    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs(self.as_secs() / rhs)
    }
}

impl Div for Duration {
    type Output = f64;

    fn div(self, rhs: Duration) -> f64 {
        self.as_secs() / rhs.as_secs()
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

// --- Display ---------------------------------------------------------------

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        if s.abs() >= 1.0 {
            write!(f, "{s:.6}s")
        } else if s.abs() >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

impl fmt::Display for DriftRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} s/s", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_roundtrip() {
        let t = Timestamp::from_secs(123.456);
        assert_eq!(t.as_secs(), 123.456);
    }

    #[test]
    fn timestamp_ordering() {
        let a = Timestamp::from_secs(1.0);
        let b = Timestamp::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn timestamp_midpoint() {
        let a = Timestamp::from_secs(10.0);
        let b = Timestamp::from_secs(20.0);
        assert_eq!(a.midpoint(b), Timestamp::from_secs(15.0));
        assert_eq!(b.midpoint(a), Timestamp::from_secs(15.0));
    }

    #[test]
    fn timestamp_duration_arithmetic() {
        let t = Timestamp::from_secs(100.0);
        let d = Duration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 102.5);
        assert_eq!((t - d).as_secs(), 97.5);
        assert_eq!((t + d) - t, d);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
        u -= d;
        assert_eq!(u, t);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn timestamp_rejects_nan() {
        let _ = Timestamp::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn timestamp_rejects_infinity() {
        let _ = Timestamp::from_secs(f64::INFINITY);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_millis(1500.0), Duration::from_secs(1.5));
        assert_eq!(Duration::from_micros(250.0), Duration::from_secs(0.00025));
        assert_eq!(Duration::from_secs(0.25).as_millis(), 250.0);
    }

    #[test]
    fn duration_signed_behaviour() {
        let d = Duration::from_secs(-3.0);
        assert!(d.is_negative());
        assert_eq!(d.abs(), Duration::from_secs(3.0));
        assert_eq!(-d, Duration::from_secs(3.0));
        assert!(!Duration::ZERO.is_negative());
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_secs(1.0);
        let b = Duration::from_secs(0.5);
        assert_eq!(a + b, Duration::from_secs(1.5));
        assert_eq!(a - b, b);
        assert_eq!(a * 2.0, Duration::from_secs(2.0));
        assert_eq!(2.0 * a, Duration::from_secs(2.0));
        assert_eq!(a / 4.0, Duration::from_secs(0.25));
        assert_eq!(a / b, 2.0);
        assert_eq!(a.half(), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Duration::from_secs(1.5));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(|i| Duration::from_secs(f64::from(i))).sum();
        assert_eq!(total, Duration::from_secs(10.0));
    }

    #[test]
    fn duration_min_max() {
        let a = Duration::from_secs(-1.0);
        let b = Duration::from_secs(1.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn drift_rate_scaling() {
        let delta = DriftRate::new(0.01);
        let span = Duration::from_secs(100.0);
        assert_eq!(span * delta, Duration::from_secs(1.0));
        assert_eq!(delta.inflation(), 1.01);
    }

    #[test]
    fn drift_rate_per_day() {
        let delta = DriftRate::per_day(86.4);
        assert!((delta.as_f64() - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "drift rate must satisfy")]
    fn drift_rate_rejects_negative() {
        let _ = DriftRate::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "drift rate must satisfy")]
    fn drift_rate_rejects_one_or_more() {
        let _ = DriftRate::new(1.0);
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Duration::from_secs(-0.0), Duration::ZERO);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |d: Duration| {
            let mut h = DefaultHasher::new();
            d.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(Duration::from_secs(-0.0)), hash(Duration::ZERO));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(1.5).to_string(), "1.500000s");
        assert_eq!(Duration::from_secs(2.0).to_string(), "2.000000s");
        assert_eq!(Duration::from_millis(1.5).to_string(), "1.500ms");
        assert_eq!(Duration::from_micros(2.0).to_string(), "2.000us");
        assert!(DriftRate::new(1e-5).to_string().contains("s/s"));
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(Timestamp::default(), Timestamp::ZERO);
        assert_eq!(Duration::default(), Duration::ZERO);
        assert_eq!(DriftRate::default(), DriftRate::ZERO);
    }
}
