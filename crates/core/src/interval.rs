//! Closed time intervals and their algebra.
//!
//! A [`TimeInterval`] `[lo, hi]` is a server's claim that real time lies
//! between `lo` and `hi`. The *trailing edge* is `lo = C − E` and the
//! *leading edge* is `hi = C + E` in the paper's vocabulary (§2.2).
//! Intersection of such claims is the heart of algorithm IM (§4) and of
//! the fault-tolerant generalisation in [`crate::marzullo`].

use std::fmt;

use crate::time::{Duration, Timestamp};

/// A closed interval `[lo, hi]` on the time axis, with `lo ≤ hi`.
///
/// ```
/// use tempo_core::{TimeInterval, Timestamp, Duration};
///
/// let a = TimeInterval::new(Timestamp::from_secs(1.0), Timestamp::from_secs(3.0));
/// let b = TimeInterval::from_center_radius(
///     Timestamp::from_secs(2.5),
///     Duration::from_secs(1.0),
/// );
/// let both = a.intersect(&b).expect("they overlap");
/// assert_eq!(both.lo(), Timestamp::from_secs(1.5));
/// assert_eq!(both.hi(), Timestamp::from_secs(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    lo: Timestamp,
    hi: Timestamp,
}

/// Error returned by [`TimeInterval::try_new`] when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidIntervalError {
    /// The offending lower bound.
    pub lo: Timestamp,
    /// The offending upper bound.
    pub hi: Timestamp,
}

impl fmt::Display for InvalidIntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interval lower bound {} exceeds upper bound {}",
            self.lo, self.hi
        )
    }
}

impl std::error::Error for InvalidIntervalError {}

impl TimeInterval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`. Use [`TimeInterval::try_new`] for a fallible
    /// variant.
    #[must_use]
    pub fn new(lo: Timestamp, hi: Timestamp) -> Self {
        Self::try_new(lo, hi).expect("interval lower bound must not exceed upper bound")
    }

    /// Creates the interval `[lo, hi]`, or an error if `lo > hi`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] when `lo > hi`.
    pub fn try_new(lo: Timestamp, hi: Timestamp) -> Result<Self, InvalidIntervalError> {
        if lo <= hi {
            Ok(TimeInterval { lo, hi })
        } else {
            Err(InvalidIntervalError { lo, hi })
        }
    }

    /// Creates `[center − radius, center + radius]` — the interval a
    /// server reports for the estimate `⟨C, E⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    #[must_use]
    pub fn from_center_radius(center: Timestamp, radius: Duration) -> Self {
        assert!(
            !radius.is_negative(),
            "interval radius must be non-negative, got {radius}"
        );
        TimeInterval {
            lo: center - radius,
            hi: center + radius,
        }
    }

    /// The degenerate interval `[t, t]`.
    #[must_use]
    pub fn point(t: Timestamp) -> Self {
        TimeInterval { lo: t, hi: t }
    }

    /// The trailing edge `C − E` (earliest possible real time).
    #[must_use]
    pub fn lo(&self) -> Timestamp {
        self.lo
    }

    /// The leading edge `C + E` (latest possible real time).
    #[must_use]
    pub fn hi(&self) -> Timestamp {
        self.hi
    }

    /// The midpoint `C` of the interval.
    #[must_use]
    pub fn midpoint(&self) -> Timestamp {
        self.lo.midpoint(self.hi)
    }

    /// The full width `hi − lo = 2E` (never negative).
    #[must_use]
    pub fn width(&self) -> Duration {
        self.hi - self.lo
    }

    /// The radius `E = width / 2`.
    #[must_use]
    pub fn radius(&self) -> Duration {
        self.width().half()
    }

    /// `true` if `t ∈ [lo, hi]`.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// `true` if `other` lies entirely inside `self`.
    #[must_use]
    pub fn contains_interval(&self, other: &TimeInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` if the two closed intervals share at least one point.
    ///
    /// This is the paper's *consistency* predicate expressed on intervals:
    /// `|C_i − C_j| ≤ E_i + E_j` iff the intervals intersect (§2.3).
    #[must_use]
    pub fn intersects(&self, other: &TimeInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of two closed intervals, or `None` when disjoint.
    ///
    /// Touching intervals (`a.hi == b.lo`) intersect in a single point.
    #[must_use]
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        TimeInterval::try_new(lo, hi).ok()
    }

    /// The smallest interval containing both inputs (convex hull).
    #[must_use]
    pub fn hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Translates the interval by `offset`.
    #[must_use]
    pub fn shift(&self, offset: Duration) -> TimeInterval {
        TimeInterval {
            lo: self.lo + offset,
            hi: self.hi + offset,
        }
    }

    /// Grows the interval by `amount` on each side (`amount` may be
    /// negative to shrink, as long as the result stays non-empty).
    ///
    /// # Panics
    ///
    /// Panics if shrinking would make `lo > hi`.
    #[must_use]
    pub fn expand(&self, amount: Duration) -> TimeInterval {
        TimeInterval::new(self.lo - amount, self.hi + amount)
    }

    /// Grows only the leading edge, the way rule IM-2 widens a reply by
    /// the round-trip allowance `(1 + δ_i)·ξ` (only the *future* side of
    /// the claim decays while a reply is in flight).
    #[must_use]
    pub fn extend_leading(&self, amount: Duration) -> TimeInterval {
        TimeInterval::new(self.lo, self.hi + amount)
    }

    /// Intersection of every interval in `intervals`, or `None` if the
    /// collection is empty or the common intersection is empty.
    ///
    /// ```
    /// use tempo_core::{TimeInterval, Timestamp};
    ///
    /// let ts = Timestamp::from_secs;
    /// let all = [
    ///     TimeInterval::new(ts(0.0), ts(4.0)),
    ///     TimeInterval::new(ts(1.0), ts(5.0)),
    ///     TimeInterval::new(ts(2.0), ts(6.0)),
    /// ];
    /// let common = TimeInterval::intersect_all(&all).unwrap();
    /// assert_eq!(common, TimeInterval::new(ts(2.0), ts(4.0)));
    /// ```
    #[must_use]
    pub fn intersect_all(intervals: &[TimeInterval]) -> Option<TimeInterval> {
        let (first, rest) = intervals.split_first()?;
        rest.iter()
            .try_fold(*first, |acc, next| acc.intersect(next))
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn iv(lo: f64, hi: f64) -> TimeInterval {
        TimeInterval::new(ts(lo), ts(hi))
    }

    #[test]
    fn construction_and_accessors() {
        let i = iv(1.0, 3.0);
        assert_eq!(i.lo(), ts(1.0));
        assert_eq!(i.hi(), ts(3.0));
        assert_eq!(i.midpoint(), ts(2.0));
        assert_eq!(i.width(), Duration::from_secs(2.0));
        assert_eq!(i.radius(), Duration::from_secs(1.0));
    }

    #[test]
    fn try_new_rejects_inverted() {
        assert!(TimeInterval::try_new(ts(2.0), ts(1.0)).is_err());
        let err = TimeInterval::try_new(ts(2.0), ts(1.0)).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    #[should_panic(expected = "lower bound must not exceed")]
    fn new_panics_on_inverted() {
        let _ = iv(2.0, 1.0);
    }

    #[test]
    fn center_radius_roundtrip() {
        let i = TimeInterval::from_center_radius(ts(10.0), Duration::from_secs(2.0));
        assert_eq!(i, iv(8.0, 12.0));
        assert_eq!(i.midpoint(), ts(10.0));
        assert_eq!(i.radius(), Duration::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "radius must be non-negative")]
    fn center_radius_rejects_negative_radius() {
        let _ = TimeInterval::from_center_radius(ts(0.0), Duration::from_secs(-1.0));
    }

    #[test]
    fn point_interval() {
        let p = TimeInterval::point(ts(5.0));
        assert_eq!(p.width(), Duration::ZERO);
        assert!(p.contains(ts(5.0)));
        assert!(!p.contains(ts(5.000001)));
    }

    #[test]
    fn containment() {
        let outer = iv(0.0, 10.0);
        let inner = iv(2.0, 3.0);
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.contains_interval(&outer));
        assert!(outer.contains(ts(0.0)));
        assert!(outer.contains(ts(10.0)));
        assert!(!outer.contains(ts(10.1)));
    }

    #[test]
    fn intersection_overlapping() {
        let a = iv(0.0, 5.0);
        let b = iv(3.0, 8.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersect(&b), Some(iv(3.0, 5.0)));
        assert_eq!(b.intersect(&a), Some(iv(3.0, 5.0)));
    }

    #[test]
    fn intersection_touching_is_a_point() {
        let a = iv(0.0, 3.0);
        let b = iv(3.0, 8.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersect(&b), Some(TimeInterval::point(ts(3.0))));
    }

    #[test]
    fn intersection_disjoint() {
        let a = iv(0.0, 1.0);
        let b = iv(2.0, 3.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn intersection_subset_case() {
        // Left side of Figure 2: one interval inside another — the
        // intersection is the inner interval itself.
        let outer = iv(0.0, 10.0);
        let inner = iv(4.0, 6.0);
        assert_eq!(outer.intersect(&inner), Some(inner));
    }

    #[test]
    fn hull_covers_both() {
        let a = iv(0.0, 2.0);
        let b = iv(5.0, 7.0);
        assert_eq!(a.hull(&b), iv(0.0, 7.0));
        assert_eq!(b.hull(&a), iv(0.0, 7.0));
    }

    #[test]
    fn shift_and_expand() {
        let a = iv(1.0, 2.0);
        assert_eq!(a.shift(Duration::from_secs(3.0)), iv(4.0, 5.0));
        assert_eq!(a.shift(Duration::from_secs(-1.0)), iv(0.0, 1.0));
        assert_eq!(a.expand(Duration::from_secs(0.5)), iv(0.5, 2.5));
        assert_eq!(a.expand(Duration::from_secs(-0.5)), iv(1.5, 1.5));
    }

    #[test]
    #[should_panic]
    fn over_shrinking_panics() {
        let _ = iv(1.0, 2.0).expand(Duration::from_secs(-1.0));
    }

    #[test]
    fn extend_leading_only_moves_hi() {
        let a = iv(1.0, 2.0);
        let widened = a.extend_leading(Duration::from_secs(0.25));
        assert_eq!(widened.lo(), ts(1.0));
        assert_eq!(widened.hi(), ts(2.25));
    }

    #[test]
    fn intersect_all_basics() {
        assert_eq!(TimeInterval::intersect_all(&[]), None);
        assert_eq!(
            TimeInterval::intersect_all(&[iv(1.0, 2.0)]),
            Some(iv(1.0, 2.0))
        );
        let common =
            TimeInterval::intersect_all(&[iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)]).unwrap();
        assert_eq!(common, iv(2.0, 4.0));
        assert_eq!(
            TimeInterval::intersect_all(&[iv(0.0, 1.0), iv(2.0, 3.0)]),
            None
        );
    }

    #[test]
    fn display() {
        assert_eq!(iv(1.0, 2.0).to_string(), "[1.000000s .. 2.000000s]");
    }
}
