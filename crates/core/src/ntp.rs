//! An NTP-style selection ("the intersection algorithm", RFC 5905
//! §11.2.1), implemented as a comparator for [`crate::marzullo`].
//!
//! NTP's clock-select is the engineering descendant of the algorithms in
//! this paper: it also treats every source as an interval
//! `[θ − λ, θ + λ]`, but it (a) tracks the *midpoints* of the candidate
//! intervals and requires a majority of them to fall inside the chosen
//! region, and (b) widens the accepted region to the outermost edges
//! still covered by `n − f` sources instead of taking the tightest
//! intersection. The result is more robust to marginally-overlapping
//! sources at the price of a looser bound — exactly the trade-off the
//! A1 ablation experiment measures.

use std::fmt;

use crate::interval::TimeInterval;
use crate::time::Timestamp;

/// The outcome of the NTP-style selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtpSelection {
    /// Lower bound of the accepted region.
    pub low: Timestamp,
    /// Upper bound of the accepted region.
    pub high: Timestamp,
    /// The number of sources assumed faulty for the selection to succeed.
    pub assumed_falsetickers: usize,
    /// Indices of sources whose interval overlaps the accepted region.
    pub truechimers: Vec<usize>,
    /// Indices of sources rejected as falsetickers.
    pub falsetickers: Vec<usize>,
}

impl NtpSelection {
    /// The accepted region as an interval.
    #[must_use]
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.low, self.high)
    }
}

impl fmt::Display for NtpSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} .. {}] with {} truechimer(s), {} falseticker(s)",
            self.low,
            self.high,
            self.truechimers.len(),
            self.falsetickers.len()
        )
    }
}

/// Edge type markers used by the selection scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edge {
    Low,
    Mid,
    High,
}

/// Runs the RFC 5905 intersection algorithm over the source intervals.
///
/// Returns `None` when no assumed-falseticker count below a majority
/// (`f < ⌈n/2⌉`) produces an acceptable region — the "no majority
/// clique" failure NTP reports as unsynchronized.
///
/// ```
/// use tempo_core::{TimeInterval, Timestamp};
/// use tempo_core::ntp::select;
///
/// let ts = Timestamp::from_secs;
/// let sources = [
///     TimeInterval::new(ts(8.0), ts(12.0)),
///     TimeInterval::new(ts(9.0), ts(13.0)),
///     TimeInterval::new(ts(10.0), ts(12.0)),
/// ];
/// let sel = select(&sources).expect("majority agrees");
/// assert_eq!(sel.assumed_falsetickers, 0);
/// assert_eq!(sel.truechimers, vec![0, 1, 2]);
/// ```
#[must_use]
pub fn select(intervals: &[TimeInterval]) -> Option<NtpSelection> {
    let n = intervals.len();
    if n == 0 {
        return None;
    }

    // Build the sorted edge list: (value, type). Ties order Low < Mid <
    // High so that touching intervals still chime.
    let mut edges: Vec<(Timestamp, Edge)> = Vec::with_capacity(n * 3);
    for iv in intervals {
        edges.push((iv.lo(), Edge::Low));
        edges.push((iv.midpoint(), Edge::Mid));
        edges.push((iv.hi(), Edge::High));
    }
    edges.sort_by_key(|&(t, e)| {
        (
            t,
            match e {
                Edge::Low => 0u8,
                Edge::Mid => 1,
                Edge::High => 2,
            },
        )
    });

    // Majority requirement: f must stay below half the sources.
    for f in 0..n.div_ceil(2) {
        let needed = n - f;

        // Ascending scan for the low endpoint.
        let mut chime: usize = 0;
        let mut midcount = 0usize;
        let mut low = None;
        for &(t, e) in &edges {
            match e {
                Edge::Low => {
                    chime += 1;
                    if chime >= needed {
                        low = Some(t);
                        break;
                    }
                }
                Edge::Mid => midcount += 1,
                Edge::High => chime = chime.saturating_sub(1),
            }
        }

        // Descending scan for the high endpoint.
        let mut chime: usize = 0;
        let mut high = None;
        for &(t, e) in edges.iter().rev() {
            match e {
                Edge::High => {
                    chime += 1;
                    if chime >= needed {
                        high = Some(t);
                        break;
                    }
                }
                Edge::Mid => midcount += 1,
                Edge::Low => chime = chime.saturating_sub(1),
            }
        }

        if let (Some(low), Some(high)) = (low, high) {
            // midcount here counts midpoints strictly outside the scans'
            // progress; RFC 5905 accepts when the number of midpoints
            // outside [low, high] does not exceed f.
            let outside_mids = intervals
                .iter()
                .filter(|iv| {
                    let m = iv.midpoint();
                    m < low || m > high
                })
                .count();
            let _ = midcount; // scan-local count superseded by exact check
            if low <= high && outside_mids <= f {
                let region = TimeInterval::new(low, high);
                let mut truechimers = Vec::new();
                let mut falsetickers = Vec::new();
                for (i, iv) in intervals.iter().enumerate() {
                    if iv.intersects(&region) {
                        truechimers.push(i);
                    } else {
                        falsetickers.push(i);
                    }
                }
                return Some(NtpSelection {
                    low,
                    high,
                    assumed_falsetickers: f,
                    truechimers,
                    falsetickers,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn iv(lo: f64, hi: f64) -> TimeInterval {
        TimeInterval::new(ts(lo), ts(hi))
    }

    #[test]
    fn empty_input_fails() {
        assert!(select(&[]).is_none());
    }

    #[test]
    fn single_source_is_accepted() {
        let sel = select(&[iv(1.0, 3.0)]).unwrap();
        assert_eq!(sel.low, ts(1.0));
        assert_eq!(sel.high, ts(3.0));
        assert_eq!(sel.assumed_falsetickers, 0);
        assert_eq!(sel.truechimers, vec![0]);
    }

    #[test]
    fn all_agreeing_sources() {
        let sources = [iv(8.0, 12.0), iv(9.0, 13.0), iv(10.0, 12.0)];
        let sel = select(&sources).unwrap();
        assert_eq!(sel.assumed_falsetickers, 0);
        // NTP keeps the outermost edges still covered by all: [10, 12].
        assert_eq!(sel.low, ts(10.0));
        assert_eq!(sel.high, ts(12.0));
        assert!(sel.falsetickers.is_empty());
    }

    #[test]
    fn midpoint_rule_forces_a_falseticker_assumption() {
        // [8,12]'s midpoint (10) lies outside the tight intersection
        // [11,12], so NTP cannot accept f = 0 and must widen with f = 1
        // — Marzullo's sweep has no such restriction.
        let sources = [iv(8.0, 12.0), iv(11.0, 13.0), iv(10.0, 12.0)];
        let sel = select(&sources).unwrap();
        assert_eq!(sel.assumed_falsetickers, 1);
        assert_eq!(sel.low, ts(10.0));
        assert_eq!(sel.high, ts(12.0));
        // All three still intersect the accepted region.
        assert_eq!(sel.truechimers, vec![0, 1, 2]);
        let tight = crate::marzullo::best_intersection(&sources).unwrap();
        assert_eq!(tight.coverage, 3);
    }

    #[test]
    fn one_falseticker_among_four() {
        let sources = [
            iv(10.0, 12.0),
            iv(11.0, 13.0),
            iv(10.5, 12.5),
            iv(100.0, 101.0), // falseticker
        ];
        let sel = select(&sources).unwrap();
        assert_eq!(sel.assumed_falsetickers, 1);
        assert_eq!(sel.falsetickers, vec![3]);
        assert_eq!(sel.truechimers, vec![0, 1, 2]);
        assert!(sel.low >= ts(10.0) && sel.high <= ts(13.0));
    }

    #[test]
    fn no_majority_fails() {
        // Three mutually disjoint sources: no f < 2 yields agreement.
        let sources = [iv(0.0, 1.0), iv(10.0, 11.0), iv(20.0, 21.0)];
        assert!(select(&sources).is_none());
    }

    #[test]
    fn two_against_two_split_fails_or_flags() {
        // Even split: the midpoint condition cannot be met with f < 2,
        // so selection fails (NTP would report unsynchronized).
        let sources = [iv(0.0, 2.0), iv(1.0, 3.0), iv(10.0, 12.0), iv(11.0, 13.0)];
        assert!(select(&sources).is_none());
    }

    #[test]
    fn ntp_region_is_wider_than_marzullo_best() {
        // The documented trade-off: NTP's accepted region contains the
        // tight Marzullo intersection.
        let sources = [iv(8.0, 12.0), iv(9.0, 13.0), iv(10.0, 14.0)];
        let sel = select(&sources).unwrap();
        let tight = crate::marzullo::best_intersection(&sources).unwrap();
        assert!(sel.interval().contains_interval(&tight.best().interval));
    }

    #[test]
    fn selection_interval_accessor_and_display() {
        let sel = select(&[iv(1.0, 3.0)]).unwrap();
        assert_eq!(sel.interval(), iv(1.0, 3.0));
        assert!(sel.to_string().contains("truechimer"));
    }

    #[test]
    fn barely_touching_sources_are_rejected() {
        // Intervals that only touch have midpoints far outside the
        // shared point, so the midpoint rule rejects every f < ⌈n/2⌉.
        // (Marzullo's sweep, by contrast, happily returns the point —
        // this is the robustness/tightness trade-off documented above.)
        let sources = [iv(0.0, 5.0), iv(5.0, 10.0), iv(4.0, 6.0)];
        assert!(select(&sources).is_none());
        // All three intervals share the single point t = 5.
        let tight = crate::marzullo::best_intersection(&sources).unwrap();
        assert_eq!(tight.coverage, 3);
    }
}
