//! Consonance: consistency applied to clock *rates* (§5).
//!
//! The static arrangement of intervals cannot reveal *why* a service is
//! inconsistent; the rates of the clocks must be examined. Two clocks
//! are **consonant** at `t₀` when their rate of separation is within the
//! sum of their claimed drift bounds:
//!
//! ```text
//! | d/dt (C_i(t) − C_j(t)) |  ≤  δ_i + δ_j
//! ```
//!
//! The paper observes that the interval machinery of algorithms MM and
//! IM can be replayed on *rate intervals*: each clock claims its drift
//! lies in `[−δ_i, +δ_i]`, each observation produces a measured rate
//! with an uncertainty, and the Marzullo sweep over the resulting
//! intervals identifies which clocks' claims can simultaneously hold.

use std::fmt;

use crate::interval::TimeInterval;
use crate::marzullo::{best_intersection, MarzulloResult};
use crate::time::{DriftRate, Duration, Timestamp};

/// A closed interval of drift rates `[lo, hi]` (seconds per second,
/// relative to a perfect clock; `0.0` means perfectly accurate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateInterval {
    lo: f64,
    hi: f64,
}

impl RateInterval {
    /// Creates the rate interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if either bound is non-finite or `lo > hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid rate interval [{lo}, {hi}]"
        );
        RateInterval { lo, hi }
    }

    /// The claim implied by a drift bound: the drift lies in `[−δ, +δ]`.
    #[must_use]
    pub fn from_bound(delta: DriftRate) -> Self {
        RateInterval::new(-delta.as_f64(), delta.as_f64())
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint of the interval.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        self.lo + (self.hi - self.lo) / 2.0
    }

    /// Width `hi − lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when the two intervals share a point.
    #[must_use]
    pub fn intersects(&self, other: &RateInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection, or `None` when disjoint.
    #[must_use]
    pub fn intersect(&self, other: &RateInterval) -> Option<RateInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| RateInterval::new(lo, hi))
    }

    /// `true` if `rate ∈ [lo, hi]`.
    #[must_use]
    pub fn contains(&self, rate: f64) -> bool {
        self.lo <= rate && rate <= self.hi
    }
}

impl fmt::Display for RateInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3e} .. {:.3e}] s/s", self.lo, self.hi)
    }
}

/// A measured drift rate together with its measurement uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateObservation {
    /// The measured drift (seconds per second; `0.0` = accurate).
    pub rate: f64,
    /// Half-width of the measurement's uncertainty.
    pub uncertainty: f64,
}

impl RateObservation {
    /// Packages a measurement.
    ///
    /// # Panics
    ///
    /// Panics if either field is non-finite or `uncertainty` is
    /// negative.
    #[must_use]
    pub fn new(rate: f64, uncertainty: f64) -> Self {
        assert!(
            rate.is_finite() && uncertainty.is_finite() && uncertainty >= 0.0,
            "invalid rate observation ({rate}, ±{uncertainty})"
        );
        RateObservation { rate, uncertainty }
    }

    /// The interval `[rate − uncertainty, rate + uncertainty]`.
    #[must_use]
    pub fn interval(&self) -> RateInterval {
        RateInterval::new(self.rate - self.uncertainty, self.rate + self.uncertainty)
    }
}

/// The §5 consonance predicate: the observed separation rate of two
/// clocks is explainable by their claimed drift bounds.
///
/// `separation_rate` is `d/dt (C_i − C_j)` as measured between two
/// observation instants.
///
/// ```
/// use tempo_core::DriftRate;
/// use tempo_core::consonance::are_consonant;
///
/// let di = DriftRate::new(1e-5);
/// let dj = DriftRate::new(2e-5);
/// assert!(are_consonant(2.5e-5, di, dj));
/// assert!(!are_consonant(5.0e-5, di, dj));
/// ```
#[must_use]
pub fn are_consonant(separation_rate: f64, delta_i: DriftRate, delta_j: DriftRate) -> bool {
    separation_rate.abs() <= delta_i.as_f64() + delta_j.as_f64()
}

/// Estimates the separation rate `d/dt (C_i − C_j)` from two paired
/// readings `(C_i, C_j)` taken at two different moments.
///
/// The elapsed time is approximated by clock `j`'s elapsed time, which
/// is accurate to within `δ_j` — well below the rates being estimated.
///
/// # Panics
///
/// Panics if clock `j` did not advance between the readings.
#[must_use]
pub fn separation_rate(first: (Timestamp, Timestamp), second: (Timestamp, Timestamp)) -> f64 {
    let elapsed_j: Duration = second.1 - first.1;
    assert!(
        elapsed_j.as_secs() > 0.0,
        "reference clock must advance between readings"
    );
    let sep_second = second.0 - second.1;
    let sep_first = first.0 - first.1;
    (sep_second - sep_first).as_secs() / elapsed_j.as_secs()
}

/// Runs the Marzullo sweep over a set of rate intervals: which rate
/// claims can simultaneously hold, and what consensus drift rate do they
/// define?
///
/// Returns `None` for an empty input. This is the §5 idea of
/// "maintaining a consonant set of δ_i just as the algorithms maintain a
/// consistent set of t_i".
#[must_use]
pub fn rate_intersection(rates: &[RateInterval]) -> Option<(RateInterval, MarzulloResult)> {
    if rates.is_empty() {
        return None;
    }
    // Reuse the time-interval sweep by interpreting rates as seconds.
    let as_time: Vec<TimeInterval> = rates
        .iter()
        .map(|r| TimeInterval::new(Timestamp::from_secs(r.lo), Timestamp::from_secs(r.hi)))
        .collect();
    let result = best_intersection(&as_time)?;
    let best = result.best().interval;
    Some((
        RateInterval::new(best.lo().as_secs(), best.hi().as_secs()),
        result,
    ))
}

/// Identifies *dissonant* clocks: those whose observed rate interval
/// does not intersect their claimed `[−δ, +δ]`.
///
/// This is the recovery-time diagnosis of §5: an inconsistent service
/// examines rates to find out which server's drift bound is invalid.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn find_dissonant(observed: &[RateObservation], claimed: &[DriftRate]) -> Vec<usize> {
    assert_eq!(
        observed.len(),
        claimed.len(),
        "one observation per claimed bound required"
    );
    observed
        .iter()
        .zip(claimed)
        .enumerate()
        .filter(|(_, (obs, claim))| {
            !obs.interval()
                .intersects(&RateInterval::from_bound(**claim))
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_interval_basics() {
        let r = RateInterval::new(-1e-5, 3e-5);
        assert_eq!(r.lo(), -1e-5);
        assert_eq!(r.hi(), 3e-5);
        assert!((r.midpoint() - 1e-5).abs() < 1e-18);
        assert!((r.width() - 4e-5).abs() < 1e-18);
        assert!(r.contains(0.0));
        assert!(!r.contains(4e-5));
    }

    #[test]
    #[should_panic(expected = "invalid rate interval")]
    fn rate_interval_rejects_inverted() {
        let _ = RateInterval::new(1.0, 0.0);
    }

    #[test]
    fn from_bound_is_symmetric() {
        let r = RateInterval::from_bound(DriftRate::new(2e-5));
        assert_eq!(r.lo(), -2e-5);
        assert_eq!(r.hi(), 2e-5);
    }

    #[test]
    fn rate_interval_intersection() {
        let a = RateInterval::new(0.0, 2.0e-5);
        let b = RateInterval::new(1.0e-5, 3.0e-5);
        assert!(a.intersects(&b));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.lo(), 1.0e-5);
        assert_eq!(i.hi(), 2.0e-5);
        let c = RateInterval::new(5.0e-5, 6.0e-5);
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn observation_to_interval() {
        let obs = RateObservation::new(1e-4, 2e-5);
        let iv = obs.interval();
        assert!((iv.lo() - 8e-5).abs() < 1e-18);
        assert!((iv.hi() - 1.2e-4).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "invalid rate observation")]
    fn observation_rejects_negative_uncertainty() {
        let _ = RateObservation::new(0.0, -1.0);
    }

    #[test]
    fn consonance_predicate() {
        let di = DriftRate::new(1e-5);
        let dj = DriftRate::new(1e-5);
        assert!(are_consonant(0.0, di, dj));
        assert!(are_consonant(2e-5, di, dj)); // boundary: ≤
        assert!(are_consonant(-2e-5, di, dj));
        assert!(!are_consonant(2.1e-5, di, dj));
    }

    #[test]
    fn separation_rate_from_paired_readings() {
        // Clock i runs 1% fast relative to clock j.
        let ts = Timestamp::from_secs;
        let first = (ts(0.0), ts(0.0));
        let second = (ts(101.0), ts(100.0));
        let rate = separation_rate(first, second);
        assert!((rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn separation_rate_negative_when_slow() {
        let ts = Timestamp::from_secs;
        let rate = separation_rate((ts(0.0), ts(0.0)), (ts(99.0), ts(100.0)));
        assert!((rate + 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reference clock must advance")]
    fn separation_rate_requires_elapsed_time() {
        let ts = Timestamp::from_secs;
        let _ = separation_rate((ts(0.0), ts(5.0)), (ts(1.0), ts(5.0)));
    }

    #[test]
    fn rate_intersection_of_consistent_claims() {
        let rates = [
            RateInterval::new(-2e-5, 2e-5),
            RateInterval::new(-1e-5, 3e-5),
            RateInterval::new(0.0, 4e-5),
        ];
        let (best, result) = rate_intersection(&rates).unwrap();
        assert_eq!(result.coverage, 3);
        assert!((best.lo() - 0.0).abs() < 1e-18);
        assert!((best.hi() - 2e-5).abs() < 1e-18);
    }

    #[test]
    fn rate_intersection_excludes_outlier() {
        let rates = [
            RateInterval::new(-1e-5, 1e-5),
            RateInterval::new(-2e-5, 0.5e-5),
            RateInterval::new(4.0e-2, 4.2e-2), // the 4%-fast clock of §3
        ];
        let (_, result) = rate_intersection(&rates).unwrap();
        assert_eq!(result.coverage, 2);
        assert_eq!(result.best().members, vec![0, 1]);
    }

    #[test]
    fn rate_intersection_empty_input() {
        assert!(rate_intersection(&[]).is_none());
    }

    #[test]
    fn find_dissonant_flags_invalid_bound() {
        // The §3 anecdote: claimed one second/day, actually ~4% fast.
        let observed = [
            RateObservation::new(1e-6, 1e-6),
            RateObservation::new(0.04, 1e-3), // an hour per day
        ];
        let claimed = [DriftRate::per_day(1.0), DriftRate::per_day(1.0)];
        assert_eq!(find_dissonant(&observed, &claimed), vec![1]);
    }

    #[test]
    fn find_dissonant_accepts_honest_clocks() {
        let observed = [
            RateObservation::new(5e-6, 1e-6),
            RateObservation::new(-8e-6, 1e-6),
        ];
        let claimed = [DriftRate::per_day(1.0), DriftRate::per_day(1.0)];
        assert!(find_dissonant(&observed, &claimed).is_empty());
    }

    #[test]
    #[should_panic(expected = "one observation per claimed bound")]
    fn find_dissonant_length_mismatch() {
        let _ = find_dissonant(&[], &[DriftRate::ZERO]);
    }

    #[test]
    fn displays() {
        assert!(RateInterval::new(0.0, 1e-5).to_string().contains("s/s"));
    }
}
