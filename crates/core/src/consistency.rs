//! Consistency of a time service (§2.3 and §5).
//!
//! Two servers are *consistent* when their intervals intersect; the
//! service as a whole is consistent when **all** intervals share a common
//! point. Consistency is the only property a running service can check —
//! correctness would require a perfect clock.
//!
//! Crucially, consistency is **not transitive** (the reason the paper
//! dismisses majority voting in §3). An inconsistent service partitions
//! into *consistency groups*: maximal sets of servers whose intervals
//! share a common point. Figure 4 of the paper shows a six-server
//! service with three such groups; [`consistency_groups`] recovers
//! exactly that decomposition.

use std::fmt;

use crate::interval::TimeInterval;
use crate::TimeEstimate;

/// A maximal set of mutually consistent servers (their intervals share a
/// common point), together with that shared intersection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyGroup {
    /// Indices (into the input slice) of the group's members, ascending.
    pub members: Vec<usize>,
    /// The common intersection of the members' intervals.
    pub intersection: TimeInterval,
}

impl fmt::Display for ConsistencyGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{:?}}} ∩ = {}", self.members, self.intersection)
    }
}

/// The pairwise-consistency graph of a set of estimates.
///
/// Nodes are servers; an edge connects `i` and `j` when
/// `|C_i − C_j| ≤ E_i + E_j`. The graph's connected components are the
/// coarsest partition a recovery procedure can distinguish; its
/// [`consistency_groups`] (computed from the same intervals) are the
/// finest.
#[derive(Debug, Clone)]
pub struct ConsistencyGraph {
    n: usize,
    adjacency: Vec<bool>, // row-major n×n
}

impl ConsistencyGraph {
    /// Builds the graph from a set of reported estimates.
    #[must_use]
    pub fn new(estimates: &[TimeEstimate]) -> Self {
        let n = estimates.len();
        let mut adjacency = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                adjacency[i * n + j] = estimates[i].is_consistent_with(&estimates[j]);
            }
        }
        ConsistencyGraph { n, adjacency }
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph has no servers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether servers `i` and `j` are pairwise consistent.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn consistent(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "server index out of range");
        self.adjacency[i * self.n + j]
    }

    /// `true` when every pair of servers is consistent.
    ///
    /// Note this is *weaker* than the service being consistent (all
    /// intervals sharing one common point) — see
    /// [`TimeEstimate::is_consistent_with`] not being transitive.
    #[must_use]
    pub fn all_pairs_consistent(&self) -> bool {
        (0..self.n).all(|i| (0..self.n).all(|j| self.consistent(i, j)))
    }

    /// Connected components of the graph, each sorted ascending; the
    /// components themselves are ordered by their smallest member.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut components = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(i) = stack.pop() {
                component.push(i);
                for (j, seen_j) in seen.iter_mut().enumerate() {
                    if !*seen_j && self.consistent(i, j) {
                        *seen_j = true;
                        stack.push(j);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }
}

/// Whether the whole service is consistent: all intervals share at least
/// one common point (§2.3's definition applied service-wide).
#[must_use]
pub fn service_consistent(intervals: &[TimeInterval]) -> bool {
    TimeInterval::intersect_all(intervals).is_some()
}

/// Decomposes a (possibly inconsistent) service into its consistency
/// groups: every maximal set of intervals with a non-empty common
/// intersection.
///
/// Groups are returned ordered by the lower edge of their intersection.
/// A consistent service yields exactly one group containing every
/// server. Figure 4's six-server service yields three groups.
///
/// ```
/// use tempo_core::{TimeInterval, Timestamp};
/// use tempo_core::consistency::consistency_groups;
///
/// let ts = Timestamp::from_secs;
/// // Two cliques of two servers each, far apart.
/// let intervals = [
///     TimeInterval::new(ts(0.0), ts(2.0)),
///     TimeInterval::new(ts(1.0), ts(3.0)),
///     TimeInterval::new(ts(10.0), ts(12.0)),
///     TimeInterval::new(ts(11.0), ts(13.0)),
/// ];
/// let groups = consistency_groups(&intervals);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].members, vec![0, 1]);
/// assert_eq!(groups[1].members, vec![2, 3]);
/// ```
#[must_use]
pub fn consistency_groups(intervals: &[TimeInterval]) -> Vec<ConsistencyGroup> {
    if intervals.is_empty() {
        return Vec::new();
    }

    // Candidate points: every endpoint and the midpoint of every gap
    // between consecutive endpoints. The membership set is constant
    // between endpoints, so these candidates witness every distinct
    // membership set.
    let mut points: Vec<crate::Timestamp> = Vec::with_capacity(intervals.len() * 4);
    let mut endpoints: Vec<crate::Timestamp> =
        intervals.iter().flat_map(|iv| [iv.lo(), iv.hi()]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    for pair in endpoints.windows(2) {
        points.push(pair[0]);
        points.push(pair[0].midpoint(pair[1]));
    }
    if let Some(&last) = endpoints.last() {
        points.push(last);
    }

    // Membership set at each candidate point.
    let mut sets: Vec<Vec<usize>> = Vec::new();
    for &p in &points {
        let members: Vec<usize> = intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.contains(p))
            .map(|(i, _)| i)
            .collect();
        if !members.is_empty() && !sets.contains(&members) {
            sets.push(members);
        }
    }

    // Keep only the maximal sets (not a subset of any other set).
    let is_subset = |a: &[usize], b: &[usize]| a.iter().all(|x| b.contains(x));
    let mut groups: Vec<ConsistencyGroup> = sets
        .iter()
        .filter(|a| !sets.iter().any(|b| b.len() > a.len() && is_subset(a, b)))
        .map(|members| {
            let selected: Vec<TimeInterval> = members.iter().map(|&i| intervals[i]).collect();
            let intersection = TimeInterval::intersect_all(&selected)
                .expect("members share a witness point by construction");
            ConsistencyGroup {
                members: members.clone(),
                intersection,
            }
        })
        .collect();
    groups.sort_by_key(|g| g.intersection.lo());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, Timestamp};

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn iv(lo: f64, hi: f64) -> TimeInterval {
        TimeInterval::new(ts(lo), ts(hi))
    }

    fn est(c: f64, e: f64) -> TimeEstimate {
        TimeEstimate::new(ts(c), Duration::from_secs(e))
    }

    #[test]
    fn graph_basic_adjacency() {
        let estimates = [est(0.0, 1.0), est(1.5, 1.0), est(10.0, 1.0)];
        let g = ConsistencyGraph::new(&estimates);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(g.consistent(0, 1));
        assert!(g.consistent(1, 0));
        assert!(!g.consistent(0, 2));
        assert!(g.consistent(2, 2));
        assert!(!g.all_pairs_consistent());
    }

    #[test]
    fn graph_empty() {
        let g = ConsistencyGraph::new(&[]);
        assert!(g.is_empty());
        assert!(g.components().is_empty());
        assert!(g.all_pairs_consistent());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn graph_index_out_of_range() {
        let g = ConsistencyGraph::new(&[est(0.0, 1.0)]);
        let _ = g.consistent(0, 1);
    }

    #[test]
    fn components_partition_the_service() {
        let estimates = [
            est(0.0, 1.0),
            est(1.5, 1.0),  // consistent with 0
            est(10.0, 1.0), // isolated from the first two
            est(11.0, 1.0), // consistent with 2
        ];
        let g = ConsistencyGraph::new(&estimates);
        assert_eq!(g.components(), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn chain_is_one_component_but_not_all_pairs() {
        // a~b, b~c, but a!~c: one component, yet not all-pairs consistent
        // (the non-transitivity the paper warns about).
        let estimates = [est(0.0, 1.0), est(1.8, 1.0), est(3.6, 1.0)];
        let g = ConsistencyGraph::new(&estimates);
        assert_eq!(g.components(), vec![vec![0, 1, 2]]);
        assert!(!g.all_pairs_consistent());
    }

    #[test]
    fn service_consistency_requires_common_point() {
        assert!(service_consistent(&[iv(0.0, 2.0), iv(1.0, 3.0)]));
        // Pairwise chain without a common point is NOT a consistent
        // service.
        assert!(!service_consistent(&[
            iv(0.0, 2.0),
            iv(1.5, 3.5),
            iv(3.0, 5.0)
        ]));
        assert!(!service_consistent(&[]));
    }

    #[test]
    fn single_group_when_consistent() {
        let intervals = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)];
        let groups = consistency_groups(&intervals);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![0, 1, 2]);
        assert_eq!(groups[0].intersection, iv(2.0, 4.0));
    }

    #[test]
    fn figure4_like_six_server_service() {
        // Six servers forming three overlapping consistency groups, in
        // the spirit of the paper's Figure 4: no common point overall,
        // three maximal subsets each with a non-empty intersection.
        let intervals = [
            iv(0.0, 3.0), // S1
            iv(2.0, 5.0), // S2 — overlaps S1 and S3
            iv(4.0, 7.0), // S3 — overlaps S2 and S4
            iv(6.0, 9.0), // S4
            iv(0.5, 2.5), // S5 — strengthens group {S1, S2, S5}
            iv(6.5, 8.0), // S6 — strengthens group {S3?, S4, S6}
        ];
        assert!(!service_consistent(&intervals));
        let groups = consistency_groups(&intervals);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].members, vec![0, 1, 4]); // around t≈2–2.5
        assert_eq!(groups[1].members, vec![1, 2]); // around t≈4–5
        assert_eq!(groups[2].members, vec![2, 3, 5]); // around t≈6.5–7
    }

    #[test]
    fn chain_yields_pairwise_groups() {
        let intervals = [iv(0.0, 2.0), iv(1.5, 3.5), iv(3.0, 5.0)];
        let groups = consistency_groups(&intervals);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![0, 1]);
        assert_eq!(groups[1].members, vec![1, 2]);
    }

    #[test]
    fn disjoint_singletons() {
        let intervals = [iv(0.0, 1.0), iv(5.0, 6.0)];
        let groups = consistency_groups(&intervals);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![0]);
        assert_eq!(groups[0].intersection, iv(0.0, 1.0));
        assert_eq!(groups[1].members, vec![1]);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(consistency_groups(&[]).is_empty());
    }

    #[test]
    fn touching_intervals_form_one_group() {
        let intervals = [iv(0.0, 2.0), iv(2.0, 4.0)];
        let groups = consistency_groups(&intervals);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![0, 1]);
        assert_eq!(groups[0].intersection, TimeInterval::point(ts(2.0)));
    }

    #[test]
    fn nested_intervals_one_group() {
        let intervals = [iv(0.0, 10.0), iv(2.0, 8.0), iv(4.0, 6.0)];
        let groups = consistency_groups(&intervals);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![0, 1, 2]);
        assert_eq!(groups[0].intersection, iv(4.0, 6.0));
    }

    #[test]
    fn group_display() {
        let groups = consistency_groups(&[iv(0.0, 1.0)]);
        assert!(groups[0].to_string().contains('∩'));
    }

    #[test]
    fn groups_agree_with_marzullo_max_coverage() {
        // The biggest consistency group has exactly the coverage the
        // Marzullo sweep reports.
        let intervals = [iv(0.0, 3.0), iv(2.0, 5.0), iv(4.0, 7.0), iv(2.5, 4.5)];
        let groups = consistency_groups(&intervals);
        let best = crate::marzullo::best_intersection(&intervals).unwrap();
        let max_group = groups.iter().map(|g| g.members.len()).max().unwrap();
        assert_eq!(max_group, best.coverage);
    }
}
