//! Seqlock stress: eight reader threads hammer a [`SnapshotCell`]
//! while a writer republishes as fast as it can for about a second.
//! Every snapshot any reader ever observes must be *internally
//! consistent* — all fields from one generation, proven by redundant
//! relationships the writer bakes into each payload — and the
//! publication sequence must never appear to run backwards.
//!
//! Run in release mode (CI wraps it in a timeout): optimised code
//! interleaves far more aggressively, which is exactly what the
//! memory-ordering argument in `snapshot.rs` must survive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use tempo_core::{ClockSnapshot, DriftRate, Duration, SnapshotCell, SnapshotReader, Timestamp};

/// Builds the generation-`g` payload. Every field is a distinct
/// function of `g`, so any cross-generation mix of words breaks at
/// least one of the relationships `check` verifies.
fn payload(g: u64) -> ClockSnapshot {
    let base = g as f64;
    ClockSnapshot {
        reset_clock: Timestamp::from_secs(base * 3.0),
        inherited_error: Duration::from_secs(base * 0.5 + 0.25),
        drift_bound: DriftRate::new(if g.is_multiple_of(2) { 1e-4 } else { 2e-4 }),
        base_clock: Timestamp::from_secs(base * 3.0 + 1.0),
        base_real: Timestamp::from_secs(base * 7.0),
        epoch: (g % 1000) as u32,
        serving: !g.is_multiple_of(3),
    }
}

/// Asserts that `snap` is exactly some generation's payload.
fn check(snap: &ClockSnapshot) {
    let g = (snap.reset_clock.as_secs() / 3.0).round() as u64;
    let expected = payload(g);
    assert_eq!(
        *snap, expected,
        "torn read escaped: observed {snap:?}, generation {g} publishes {expected:?}"
    );
}

#[test]
fn eight_readers_never_observe_a_torn_snapshot() {
    let cell = Arc::new(SnapshotCell::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..8 {
        let reader = SnapshotReader::new(Arc::clone(&cell));
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut seen: u64 = 0;
            let mut last_generation = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let before = reader.generation();
                if let Some(snap) = reader.read() {
                    check(&snap);
                    seen += 1;
                }
                let after = reader.generation();
                assert!(
                    after >= before && before >= last_generation,
                    "publication sequence ran backwards: {last_generation} → {before} → {after}"
                );
                last_generation = after;
            }
            seen
        }));
    }

    // The writer republishes back-to-back for ~1 s: tens of millions of
    // generations in release mode, every one a chance to tear.
    let deadline = Instant::now() + StdDuration::from_secs(1);
    let mut g: u64 = 0;
    while Instant::now() < deadline {
        // A burst per clock check keeps the Instant overhead off the
        // write path without letting the loop run unbounded.
        for _ in 0..256 {
            g += 1;
            cell.publish(&payload(g));
        }
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_reads = 0u64;
    for handle in readers {
        total_reads += handle
            .join()
            .expect("reader panicked (torn read or regression)");
    }
    assert_eq!(cell.generation(), g);
    assert!(
        total_reads > 10_000,
        "readers starved: only {total_reads} reads against {g} generations"
    );
    // The cell still round-trips cleanly after the storm.
    assert_eq!(cell.read(), Some(payload(g)));
}
