//! Cross-validation of the Marzullo sweep against a brute-force
//! reference implementation.
//!
//! The reference evaluates coverage at every candidate point (all
//! endpoints plus midpoints between consecutive endpoints) — O(n²) but
//! obviously correct. The sweep must agree on the maximum coverage, on
//! the best region's boundaries, and on the membership sets, for both
//! random and adversarially structured inputs.

use proptest::prelude::*;

use tempo_core::marzullo::{best_intersection, intersect_tolerating};
use tempo_core::{Duration, TimeInterval, Timestamp};

/// Brute force: maximum coverage and the first maximal region.
fn brute_force(intervals: &[TimeInterval]) -> (usize, TimeInterval) {
    let mut endpoints: Vec<Timestamp> =
        intervals.iter().flat_map(|iv| [iv.lo(), iv.hi()]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();

    let cover = |t: Timestamp| intervals.iter().filter(|iv| iv.contains(t)).count();

    // Candidate points: endpoints and gap midpoints.
    let mut candidates: Vec<Timestamp> = endpoints.clone();
    for pair in endpoints.windows(2) {
        candidates.push(pair[0].midpoint(pair[1]));
    }
    candidates.sort_unstable();

    let max_cover = candidates
        .iter()
        .map(|&t| cover(t))
        .max()
        .expect("non-empty");
    // First maximal region: scan candidates in order; the region is the
    // intersection of the intervals covering the first max-coverage
    // candidate.
    let witness = candidates
        .iter()
        .copied()
        .find(|&t| cover(t) == max_cover)
        .expect("witness exists");
    let members: Vec<TimeInterval> = intervals
        .iter()
        .copied()
        .filter(|iv| iv.contains(witness))
        .collect();
    let region = TimeInterval::intersect_all(&members).expect("members share the witness");
    (max_cover, region)
}

fn arb_intervals() -> impl Strategy<Value = Vec<TimeInterval>> {
    prop::collection::vec((0.0f64..50.0, 0.0f64..20.0), 1..24).prop_map(|raw| {
        raw.into_iter()
            .map(|(lo, w)| {
                TimeInterval::new(Timestamp::from_secs(lo), Timestamp::from_secs(lo + w))
            })
            .collect()
    })
}

/// Brute-force reference for [`intersect_tolerating`]: the hull of all
/// points whose coverage reaches `n − f`. Coverage only changes at
/// interval endpoints, and the intervals are closed, so the extreme
/// qualifying points are always endpoints.
fn brute_force_tolerating(intervals: &[TimeInterval], max_faulty: usize) -> Option<TimeInterval> {
    if max_faulty >= intervals.len() {
        return None;
    }
    let needed = intervals.len() - max_faulty;
    let cover = |t: Timestamp| intervals.iter().filter(|iv| iv.contains(t)).count();
    let qualifying: Vec<Timestamp> = intervals
        .iter()
        .flat_map(|iv| [iv.lo(), iv.hi()])
        .filter(|&t| cover(t) >= needed)
        .collect();
    let lo = qualifying.iter().copied().min()?;
    let hi = qualifying.iter().copied().max()?;
    Some(TimeInterval::new(lo, hi))
}

/// Like [`arb_intervals`] but deliberately nasty: widths may be exactly
/// zero (point intervals), coordinates snap to a coarse grid so shared
/// endpoints are common, and a suffix of the vector duplicates earlier
/// entries verbatim.
fn arb_degenerate_intervals() -> impl Strategy<Value = Vec<TimeInterval>> {
    let entry = (0u32..40, prop_oneof![Just(0u32), 0u32..8]);
    (
        prop::collection::vec(entry, 1..16),
        prop::collection::vec(0usize..64, 0..8),
    )
        .prop_map(|(raw, dup_picks)| {
            let mut intervals: Vec<TimeInterval> = raw
                .into_iter()
                .map(|(lo, w)| {
                    // Snap to a 0.5 s grid: collisions on purpose.
                    let lo = f64::from(lo) * 0.5;
                    let hi = lo + f64::from(w) * 0.5;
                    TimeInterval::new(Timestamp::from_secs(lo), Timestamp::from_secs(hi))
                })
                .collect();
            for pick in dup_picks {
                let copy = intervals[pick % intervals.len()];
                intervals.push(copy);
            }
            intervals
        })
}

proptest! {
    #[test]
    fn sweep_matches_brute_force(intervals in arb_intervals()) {
        let sweep = best_intersection(&intervals).expect("non-empty input");
        let (bf_cover, bf_region) = brute_force(&intervals);
        prop_assert_eq!(sweep.coverage, bf_cover);
        // The brute-force first region must appear among the sweep's
        // best regions (and, since both pick the earliest, be the first).
        prop_assert_eq!(
            sweep.best().interval, bf_region,
            "sweep {:?} vs brute {:?}", sweep.best().interval, bf_region
        );
    }

    #[test]
    fn sweep_matches_brute_force_on_degenerate_inputs(
        intervals in arb_degenerate_intervals()
    ) {
        let sweep = best_intersection(&intervals).expect("non-empty input");
        let (bf_cover, bf_region) = brute_force(&intervals);
        prop_assert_eq!(sweep.coverage, bf_cover);
        prop_assert_eq!(sweep.best().interval, bf_region);
        for region in &sweep.regions {
            prop_assert_eq!(region.members.len(), sweep.coverage);
        }
    }

    #[test]
    fn tolerating_matches_brute_force(
        intervals in arb_degenerate_intervals(),
        f_pick in 0usize..4,
    ) {
        let max_faulty = f_pick.min(intervals.len() - 1);
        let got = intersect_tolerating(&intervals, max_faulty);
        let want = brute_force_tolerating(&intervals, max_faulty);
        prop_assert_eq!(got, want, "f = {}", max_faulty);
        // The hull's edges are genuinely supported, and the hull misses
        // no qualifying point: every endpoint with coverage ≥ n − f lies
        // inside it.
        if let Some(hull) = got {
            let needed = intervals.len() - max_faulty;
            let cover = |t: Timestamp| intervals.iter().filter(|iv| iv.contains(t)).count();
            prop_assert!(cover(hull.lo()) >= needed);
            prop_assert!(cover(hull.hi()) >= needed);
            for t in intervals.iter().flat_map(|iv| [iv.lo(), iv.hi()]) {
                if cover(t) >= needed {
                    prop_assert!(hull.contains(t));
                }
            }
        }
    }

    /// The paper's `f`-tolerance claim, tested against a real adversary:
    /// `n` honest intervals each containing real time, plus up to
    /// `f < n` adversarial intervals (arbitrary placement, disjoint or
    /// degenerate — so the adversary is always a strict minority of the
    /// combined input), must yield a hull that still contains real time.
    #[test]
    fn tolerating_contains_real_time_under_adversarial_minority(
        real in 0.0f64..100.0,
        honest_specs in prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 1..12),
        adversary_raw in prop::collection::vec(
            (-50.0f64..150.0, prop_oneof![Just(0.0f64), 0.0f64..40.0]),
            0..16,
        ),
    ) {
        let t = Timestamp::from_secs(real);
        let mut all: Vec<TimeInterval> = honest_specs
            .iter()
            .map(|&(before, after)| {
                TimeInterval::new(
                    Timestamp::from_secs(real - before),
                    Timestamp::from_secs(real + after),
                )
            })
            .collect();
        let n = all.len();
        let f = adversary_raw.len().min(n.saturating_sub(1));
        for &(lo, w) in adversary_raw.iter().take(f) {
            all.push(TimeInterval::new(
                Timestamp::from_secs(lo),
                Timestamp::from_secs(lo + w),
            ));
        }
        let hull = intersect_tolerating(&all, f)
            .expect("the honest sources alone reach n − f coverage");
        prop_assert!(
            hull.contains(t),
            "hull {:?} lost real time {:?} with f = {}", hull, t, f
        );
    }
}

#[test]
fn adversarial_structures_match() {
    let iv =
        |lo: f64, hi: f64| TimeInterval::new(Timestamp::from_secs(lo), Timestamp::from_secs(hi));
    let cases: Vec<Vec<TimeInterval>> = vec![
        // All identical.
        vec![iv(1.0, 2.0); 7],
        // Perfect nesting.
        (0..8)
            .map(|k| iv(f64::from(k), 16.0 - f64::from(k)))
            .collect(),
        // A staircase of half-overlapping intervals.
        (0..10)
            .map(|k| iv(f64::from(k), f64::from(k) + 1.5))
            .collect(),
        // Points only.
        (0..5)
            .map(|k| TimeInterval::point(Timestamp::from_secs(f64::from(k % 2))))
            .collect(),
        // Two far-apart cliques of different sizes.
        vec![
            iv(0.0, 1.0),
            iv(0.2, 1.2),
            iv(0.4, 1.4),
            iv(100.0, 101.0),
            iv(100.5, 101.5),
        ],
        // Shared endpoints everywhere.
        vec![iv(0.0, 5.0), iv(5.0, 10.0), iv(0.0, 10.0), iv(5.0, 5.0)],
    ];
    for (k, intervals) in cases.into_iter().enumerate() {
        let sweep = best_intersection(&intervals).unwrap();
        let (bf_cover, bf_region) = brute_force(&intervals);
        assert_eq!(sweep.coverage, bf_cover, "case {k}: coverage");
        assert_eq!(sweep.best().interval, bf_region, "case {k}: region");
        // Membership count always equals the coverage.
        for region in &sweep.regions {
            assert_eq!(region.members.len(), sweep.coverage, "case {k}");
        }
    }
}

#[test]
fn degenerate_widths_match() {
    // Zero-width intervals stacked with wide ones.
    let iv =
        |lo: f64, hi: f64| TimeInterval::new(Timestamp::from_secs(lo), Timestamp::from_secs(hi));
    let intervals = vec![
        iv(2.0, 2.0),
        iv(2.0, 2.0),
        iv(0.0, 4.0),
        iv(2.0, 6.0),
        TimeInterval::from_center_radius(Timestamp::from_secs(2.0), Duration::ZERO),
    ];
    let sweep = best_intersection(&intervals).unwrap();
    let (bf_cover, bf_region) = brute_force(&intervals);
    assert_eq!(sweep.coverage, bf_cover);
    assert_eq!(sweep.best().interval, bf_region);
    assert_eq!(sweep.coverage, 5);
}
