//! Property-based tests for the theorem-backed invariants of tempo-core.
//!
//! Each property corresponds to a claim proven in the paper; the
//! generators produce arbitrary-but-legal configurations (correct
//! estimates, valid drift bounds, bounded delays) and the assertions are
//! the theorem statements themselves.

use proptest::prelude::*;

use tempo_core::consistency::{consistency_groups, ConsistencyGraph};
use tempo_core::marzullo::{best_intersection, intersect_tolerating};
use tempo_core::ntp::select;
use tempo_core::sync::im::{im_round, ImOutcome};
use tempo_core::sync::mm::{mm_decide, MmOutcome};
use tempo_core::sync::TimedReply;
use tempo_core::{DriftRate, Duration, ErrorState, TimeEstimate, TimeInterval, Timestamp};

/// A correct estimate at real time `t`: the claimed interval contains `t`.
fn correct_estimate(t: f64) -> impl Strategy<Value = TimeEstimate> {
    // error in [0, 10]s, offset within ±error.
    (0.0f64..10.0).prop_flat_map(move |error| {
        (-1.0f64..1.0).prop_map(move |frac| {
            let offset = frac * error;
            TimeEstimate::new(Timestamp::from_secs(t + offset), Duration::from_secs(error))
        })
    })
}

fn drift_rate() -> impl Strategy<Value = DriftRate> {
    (0.0f64..0.1).prop_map(DriftRate::new)
}

fn arb_interval() -> impl Strategy<Value = TimeInterval> {
    (0.0f64..100.0, 0.0f64..30.0).prop_map(|(lo, w)| {
        TimeInterval::new(Timestamp::from_secs(lo), Timestamp::from_secs(lo + w))
    })
}

proptest! {
    /// Theorem 1 shape: if the requester's estimate is correct at the
    /// reception instant and the replier's estimate was correct at the
    /// moment it answered, then an MM reset yields an estimate that is
    /// correct at the reception instant.
    #[test]
    fn mm_reset_preserves_correctness(
        t0 in 0.0f64..1e6,
        sigma_frac in 0.0f64..1.0,
        xi in 0.0f64..2.0,
        delta in drift_rate(),
        // Local-clock measurement distortion within [1-δ, 1+δ].
        meas_frac in -1.0f64..1.0,
        own_seed in 0.0f64..1.0,
        own_err in 0.0f64..10.0,
        reply_seed in -1.0f64..1.0,
        reply_err in 0.0f64..10.0,
    ) {
        let sigma = sigma_frac * xi;            // request delay σ ≤ ξ
        let reply_time = t0 + sigma;            // replier answers at t0+σ
        let recv_time = t0 + xi;                // requester receives at t0+ξ

        // Correct reply at its send instant.
        let reply_est = TimeEstimate::new(
            Timestamp::from_secs(reply_time + reply_seed * reply_err),
            Duration::from_secs(reply_err),
        );
        // Correct own estimate at the reception instant.
        let own = TimeEstimate::new(
            Timestamp::from_secs(recv_time + (own_seed * 2.0 - 1.0) * own_err),
            Duration::from_secs(own_err),
        );
        // Round-trip measured on the local clock: within (1±δ)·ξ.
        let measured = xi * (1.0 + meas_frac * delta.as_f64());
        let reply = TimedReply::new(reply_est, Duration::from_secs(measured));

        if let MmOutcome::Reset(reset) = mm_decide(&own, delta, &reply) {
            // The adopted clock is C_j from time t0+σ; by reception the
            // true time advanced by ρ = ξ − σ, so the adopted interval
            // must contain recv_time:
            // C_j ± (E_j + (1+δ)ξ^i) must cover t0+ξ given C_j ± E_j
            // covered t0+σ and ξ^i ≥ (1−δ)ξ ≥ ξ − σ... (Theorem 1).
            let adopted = reset.as_estimate();
            prop_assert!(
                adopted.is_correct_at(Timestamp::from_secs(recv_time)),
                "adopted {adopted} not correct at {recv_time}"
            );
        }
    }

    /// Theorem 5 shape: the same setup under IM keeps correctness.
    #[test]
    fn im_reset_preserves_correctness(
        t0 in 0.0f64..1e6,
        sigma_fracs in prop::collection::vec(0.0f64..1.0, 1..6),
        xi in 0.0001f64..2.0,
        delta in drift_rate(),
        own_seed in 0.0f64..1.0,
        own_err in 0.0f64..10.0,
        reply_seeds in prop::collection::vec((-1.0f64..1.0, 0.0f64..10.0), 1..6),
    ) {
        let recv_time = t0 + xi;
        let own = TimeEstimate::new(
            Timestamp::from_secs(recv_time + (own_seed * 2.0 - 1.0) * own_err),
            Duration::from_secs(own_err),
        );
        let n = sigma_fracs.len().min(reply_seeds.len());
        let mut replies = Vec::new();
        for k in 0..n {
            let sigma = sigma_fracs[k] * xi;
            let (seed, err) = reply_seeds[k];
            let reply_est = TimeEstimate::new(
                Timestamp::from_secs(t0 + sigma + seed * err),
                Duration::from_secs(err),
            );
            // Conservative local measurement: exactly (1+δ)-safe ξ.
            replies.push(TimedReply::new(reply_est, Duration::from_secs(xi)));
        }
        if let ImOutcome::Reset(reset) = im_round(&own, delta, &replies) {
            let adopted = reset.as_estimate();
            prop_assert!(
                adopted.is_correct_at(Timestamp::from_secs(recv_time)),
                "IM adopted {adopted} not correct at {recv_time}"
            );
        }
    }

    /// Theorem 6: the IM intersection is never wider than the narrowest
    /// participating interval.
    #[test]
    fn im_never_wider_than_narrowest(
        own_c in 0.0f64..100.0,
        own_e in 0.0f64..10.0,
        reply_data in prop::collection::vec((0.0f64..100.0, 0.0f64..10.0, 0.0f64..0.5), 0..8),
        delta in drift_rate(),
    ) {
        let own = TimeEstimate::new(
            Timestamp::from_secs(own_c),
            Duration::from_secs(own_e),
        );
        let replies: Vec<TimedReply> = reply_data
            .iter()
            .map(|&(c, e, rtt)| TimedReply::new(
                TimeEstimate::new(Timestamp::from_secs(c), Duration::from_secs(e)),
                Duration::from_secs(rtt),
            ))
            .collect();
        if let ImOutcome::Reset(reset) = im_round(&own, delta, &replies) {
            // Narrowest input radius, replies widened by rtt allowance.
            let mut narrowest = own.error();
            for r in &replies {
                let widened = r.estimate.error()
                    + (r.round_trip * delta.inflation()).half();
                narrowest = narrowest.min(widened);
            }
            prop_assert!(
                reset.new_error.as_secs() <= narrowest.as_secs() + 1e-9,
                "IM produced {} wider than narrowest {}",
                reset.new_error, narrowest
            );
        }
    }

    /// Two correct servers are always consistent (§2.3): inconsistency
    /// proves incorrectness.
    #[test]
    fn correct_servers_are_consistent(
        t in 0.0f64..1e6,
        a in correct_estimate(0.0),
        b in correct_estimate(0.0),
    ) {
        // Shift both to be correct at the same real time t.
        let shift = Duration::from_secs(t);
        let a = TimeEstimate::new(a.time() + shift, a.error());
        let b = TimeEstimate::new(b.time() + shift, b.error());
        prop_assert!(a.is_correct_at(Timestamp::from_secs(t)));
        prop_assert!(b.is_correct_at(Timestamp::from_secs(t)));
        prop_assert!(a.is_consistent_with(&b));
    }

    /// MM-1 / Lemma 1: error growth is monotone and linear between
    /// resets.
    #[test]
    fn error_state_growth_monotone(
        r in 0.0f64..1e3,
        eps in 0.0f64..10.0,
        delta in drift_rate(),
        d1 in 0.0f64..1e4,
        d2 in 0.0f64..1e4,
    ) {
        let state = ErrorState::new(
            Timestamp::from_secs(r),
            Duration::from_secs(eps),
            delta,
        );
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let e_lo = state.error_at(Timestamp::from_secs(r + lo));
        let e_hi = state.error_at(Timestamp::from_secs(r + hi));
        prop_assert!(e_lo <= e_hi);
        // Linearity: E(r + d) − ε = d·δ.
        let expected = eps + hi * delta.as_f64();
        prop_assert!((e_hi.as_secs() - expected).abs() < 1e-9 * (1.0 + expected));
    }

    /// Interval algebra: intersection is commutative, contained in both
    /// inputs, and no wider than either input.
    #[test]
    fn interval_intersection_algebra(a in arb_interval(), b in arb_interval()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_interval(&i));
            prop_assert!(b.contains_interval(&i));
            prop_assert!(i.width() <= a.width().min(b.width()));
        } else {
            prop_assert!(!a.intersects(&b));
        }
        // Hull contains both.
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    /// Marzullo sweep: the reported maximum coverage is achieved on every
    /// best region, never exceeded anywhere, and if true time is covered
    /// by the maximum number of intervals it lies in a best region.
    #[test]
    fn marzullo_coverage_invariants(
        intervals in prop::collection::vec(arb_interval(), 1..24),
        probe in 0.0f64..130.0,
    ) {
        let result = best_intersection(&intervals).unwrap();
        let cover_at = |t: Timestamp| {
            intervals.iter().filter(|iv| iv.contains(t)).count()
        };
        for region in &result.regions {
            prop_assert_eq!(cover_at(region.interval.midpoint()), result.coverage);
            prop_assert_eq!(region.members.len(), result.coverage);
        }
        let p = Timestamp::from_secs(probe);
        prop_assert!(cover_at(p) <= result.coverage);
        if cover_at(p) == result.coverage {
            prop_assert!(result.regions.iter().any(|r| r.interval.contains(p)));
        }
    }

    /// Fault tolerance: if at least `n − f` intervals contain the true
    /// time, the tolerant intersection exists (it may be a different
    /// region when the service is ambiguous, but it exists).
    #[test]
    fn marzullo_tolerance_exists_when_quorum_correct(
        t in 20.0f64..80.0,
        correct_count in 2usize..10,
        faulty_count in 0usize..5,
        widths in prop::collection::vec(0.1f64..20.0, 16),
        offsets in prop::collection::vec(-1.0f64..1.0, 16),
    ) {
        let mut intervals = Vec::new();
        for i in 0..correct_count {
            let w = widths[i % widths.len()];
            let off = offsets[i % offsets.len()] * w;
            intervals.push(TimeInterval::from_center_radius(
                Timestamp::from_secs(t + off),
                Duration::from_secs(w),
            ));
        }
        for i in 0..faulty_count {
            // Far away from t.
            let w = widths[(i + correct_count) % widths.len()];
            intervals.push(TimeInterval::from_center_radius(
                Timestamp::from_secs(t + 1000.0 + 50.0 * i as f64),
                Duration::from_secs(w),
            ));
        }
        let f = faulty_count;
        prop_assert!(f < intervals.len());
        let res = intersect_tolerating(&intervals, f);
        prop_assert!(res.is_some(), "quorum of {correct_count} correct intervals must intersect");
    }

    /// Consistency groups: members witness a common point, groups are
    /// mutually non-nested, and every interval appears in some group.
    #[test]
    fn consistency_groups_partition(
        intervals in prop::collection::vec(arb_interval(), 1..16),
    ) {
        let groups = consistency_groups(&intervals);
        prop_assert!(!groups.is_empty());
        let mut seen = vec![false; intervals.len()];
        for g in &groups {
            // Common intersection is genuinely common.
            for &m in &g.members {
                prop_assert!(intervals[m].contains_interval(&g.intersection));
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every interval belongs to a group");
        // Maximality: no group's member set is a subset of another's.
        for (i, a) in groups.iter().enumerate() {
            for (j, b) in groups.iter().enumerate() {
                if i != j {
                    let subset = a.members.iter().all(|m| b.members.contains(m));
                    prop_assert!(!subset, "group {i} nested in group {j}");
                }
            }
        }
    }

    /// The consistency graph agrees with pairwise interval intersection.
    #[test]
    fn consistency_graph_matches_intervals(
        estimates in prop::collection::vec((0.0f64..50.0, 0.0f64..10.0), 0..12),
    ) {
        let ests: Vec<TimeEstimate> = estimates
            .iter()
            .map(|&(c, e)| TimeEstimate::new(
                Timestamp::from_secs(c),
                Duration::from_secs(e),
            ))
            .collect();
        let g = ConsistencyGraph::new(&ests);
        for i in 0..ests.len() {
            for j in 0..ests.len() {
                let expected = ests[i].interval().intersects(&ests[j].interval());
                prop_assert_eq!(g.consistent(i, j), expected);
            }
        }
    }

    /// NTP selection: on success, truechimers and falsetickers partition
    /// the sources and every truechimer overlaps the accepted region.
    #[test]
    fn ntp_selection_partitions_sources(
        intervals in prop::collection::vec(arb_interval(), 1..16),
    ) {
        if let Some(sel) = select(&intervals) {
            let mut all: Vec<usize> = sel
                .truechimers
                .iter()
                .chain(sel.falsetickers.iter())
                .copied()
                .collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..intervals.len()).collect::<Vec<_>>());
            let region = sel.interval();
            for &i in &sel.truechimers {
                prop_assert!(intervals[i].intersects(&region));
            }
            for &i in &sel.falsetickers {
                prop_assert!(!intervals[i].intersects(&region));
            }
            // Majority of midpoints inside the region.
            let inside = intervals
                .iter()
                .filter(|iv| region.contains(iv.midpoint()))
                .count();
            prop_assert!(inside + sel.assumed_falsetickers >= intervals.len());
        }
    }
}

mod filter_props {
    use proptest::prelude::*;
    use tempo_core::filter::{cluster, combine, ClockFilter, FilterSample, PeerEstimate};
    use tempo_core::{Duration, Timestamp};

    fn arb_samples() -> impl Strategy<Value = Vec<(f64, f64)>> {
        prop::collection::vec((-1.0f64..1.0, 0.0f64..0.5), 1..20)
    }

    proptest! {
        /// The filter's best sample is exactly the minimum-delay one
        /// among the retained window.
        #[test]
        fn best_is_min_delay(samples in arb_samples()) {
            let mut f = ClockFilter::new(8);
            for (i, &(off, d)) in samples.iter().enumerate() {
                f.push(FilterSample::new(
                    Duration::from_secs(off),
                    Duration::from_secs(d),
                    Timestamp::from_secs(i as f64),
                ));
            }
            let best = f.best().unwrap();
            for s in f.iter() {
                prop_assert!(best.delay <= s.delay);
            }
            // Window cap respected.
            prop_assert!(f.len() <= 8);
            prop_assert_eq!(f.len(), samples.len().min(8));
        }

        /// Cluster survivors are a subset of the peers, respect the
        /// floor, and never lose the whole ensemble.
        #[test]
        fn cluster_survivors_wellformed(
            offsets in prop::collection::vec(-1.0f64..1.0, 1..12),
            jitter in 0.0001f64..0.1,
            min_survivors_seed in any::<usize>(),
        ) {
            let peers: Vec<PeerEstimate> = offsets
                .iter()
                .map(|&o| PeerEstimate::new(
                    Duration::from_secs(o),
                    Duration::from_secs(jitter),
                    Duration::from_secs(0.01),
                ))
                .collect();
            let floor = 1 + min_survivors_seed % peers.len();
            let survivors = cluster(&peers, floor);
            prop_assert!(survivors.len() >= floor.min(peers.len()));
            prop_assert!(survivors.len() <= peers.len());
            let mut sorted = survivors.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), survivors.len(), "duplicates");
            prop_assert!(survivors.iter().all(|&i| i < peers.len()));
        }

        /// The combined offset lies within the survivors' offset range.
        #[test]
        fn combine_within_survivor_hull(
            offsets in prop::collection::vec(-1.0f64..1.0, 1..12),
            errors in prop::collection::vec(0.001f64..0.5, 12),
        ) {
            let peers: Vec<PeerEstimate> = offsets
                .iter()
                .enumerate()
                .map(|(i, &o)| PeerEstimate::new(
                    Duration::from_secs(o),
                    Duration::ZERO,
                    Duration::from_secs(errors[i % errors.len()]),
                ))
                .collect();
            let survivors: Vec<usize> = (0..peers.len()).collect();
            let combined = combine(&peers, &survivors).unwrap().as_secs();
            let lo = offsets.iter().cloned().fold(f64::MAX, f64::min);
            let hi = offsets.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(combined >= lo - 1e-12 && combined <= hi + 1e-12);
        }
    }
}
