//! Property tests for the §5 consonance machinery.

use proptest::prelude::*;

use tempo_core::consonance::{
    are_consonant, find_dissonant, rate_intersection, separation_rate, RateInterval,
    RateObservation,
};
use tempo_core::{DriftRate, Timestamp};

proptest! {
    /// `separation_rate` recovers a constant relative rate exactly,
    /// whatever the baseline and starting values.
    #[test]
    fn separation_rate_recovers_constant_rate(
        rate in -0.05f64..0.05,
        start_i in -100.0f64..100.0,
        start_j in -100.0f64..100.0,
        baseline in 1.0f64..10_000.0,
    ) {
        let ts = Timestamp::from_secs;
        let first = (ts(start_i), ts(start_j));
        let second = (
            ts(start_i + baseline * (1.0 + rate)),
            ts(start_j + baseline),
        );
        let measured = separation_rate(first, second);
        prop_assert!((measured - rate).abs() < 1e-9, "measured {measured} vs {rate}");
    }

    /// Consonance is symmetric in the two bounds and monotone in the
    /// magnitude of the separation rate.
    #[test]
    fn consonance_symmetry_and_monotonicity(
        rate in -0.01f64..0.01,
        di in 0.0f64..0.005,
        dj in 0.0f64..0.005,
    ) {
        let di = DriftRate::new(di);
        let dj = DriftRate::new(dj);
        prop_assert_eq!(are_consonant(rate, di, dj), are_consonant(rate, dj, di));
        prop_assert_eq!(are_consonant(rate, di, dj), are_consonant(-rate, di, dj));
        if are_consonant(rate, di, dj) {
            prop_assert!(are_consonant(rate / 2.0, di, dj));
        }
    }

    /// Two clocks whose actual drifts respect their claimed bounds are
    /// always consonant (the rate analogue of "correct ⇒ consistent").
    #[test]
    fn honest_rates_are_consonant(
        drift_i in -0.004f64..0.004,
        drift_j in -0.004f64..0.004,
        bound_slack in 0.0f64..0.001,
    ) {
        let di = DriftRate::new(drift_i.abs() + bound_slack);
        let dj = DriftRate::new(drift_j.abs() + bound_slack);
        // Separation rate of clocks drifting at drift_i and drift_j is
        // approximately drift_i − drift_j.
        let sep = drift_i - drift_j;
        prop_assert!(are_consonant(sep, di, dj));
    }

    /// `find_dissonant` flags exactly the observations whose intervals
    /// miss the claimed `[−δ, δ]`.
    #[test]
    fn find_dissonant_matches_interval_test(
        observations in prop::collection::vec((-0.01f64..0.01, 0.0f64..0.002), 1..10),
        bound in 1e-5f64..0.005,
    ) {
        let claimed: Vec<DriftRate> =
            vec![DriftRate::new(bound); observations.len()];
        let obs: Vec<RateObservation> = observations
            .iter()
            .map(|&(r, u)| RateObservation::new(r, u))
            .collect();
        let flagged = find_dissonant(&obs, &claimed);
        for (i, o) in obs.iter().enumerate() {
            let disjoint = !o.interval().intersects(&RateInterval::from_bound(claimed[i]));
            prop_assert_eq!(flagged.contains(&i), disjoint, "index {}", i);
        }
    }

    /// The rate-interval Marzullo agrees with pairwise logic: if all
    /// intervals pairwise intersect at a common point (they all contain
    /// some rate r), the sweep reports full coverage.
    #[test]
    fn rate_intersection_full_coverage_when_common_point(
        r in -0.01f64..0.01,
        halfwidths in prop::collection::vec(1e-6f64..0.005, 1..10),
        offsets in prop::collection::vec(-1.0f64..1.0, 10),
    ) {
        let rates: Vec<RateInterval> = halfwidths
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let off = offsets[i % offsets.len()] * h;
                RateInterval::new(r + off - h, r + off + h)
            })
            .collect();
        // Every interval contains r (|off| ≤ h), so coverage is full.
        let (best, result) = rate_intersection(&rates).unwrap();
        prop_assert_eq!(result.coverage, rates.len());
        prop_assert!(best.contains(r) || (best.lo() - r).abs() < 1e-12 || (best.hi() - r).abs() < 1e-12);
    }
}
