//! # tempo-oracle
//!
//! Online checking of the paper's theorems against a running simulation.
//!
//! The simulator knows ground-truth real time, so every claim the paper
//! *proves* can be evaluated mechanically while a scenario runs:
//!
//! | Check | Paper reference |
//! |---|---|
//! | [`TheoremId::Correctness`] | Theorems 1 & 5 — `real ∈ [C−E, C+E]` |
//! | [`TheoremId::ErrorGrowth`] | Rules MM-1/IM-1 — `E` grows at ≤ δ, resets only shrink it |
//! | [`TheoremId::AdoptionGuard`] | Rules MM-2/IM-2 — a reset never increases `E` |
//! | [`TheoremId::ErrorEnvelope`] | Theorems 2 & 4 — `E_i − E_M ≤ ξ + δ_i(τ+2ξ)` |
//! | [`TheoremId::MmAsynchronism`] | Theorem 3 — MM pairwise clock skew bound |
//! | [`TheoremId::IntersectionWidth`] | Theorem 6 — IM output ≤ narrowest input |
//! | [`TheoremId::ImAsynchronism`] | Theorem 7 — IM pairwise clock skew bound |
//! | [`TheoremId::Consistency`] | §5 — correct servers form one consistency group |
//! | [`TheoremId::Rehydration`] | Rule MM-1 across downtime — a rehydrated interval is derived correctly and still contains real time |
//! | [`TheoremId::Lifecycle`] | §5 rejoin — no service while down, bootstrap completes in bounded rounds |
//! | [`TheoremId::FTolerant`] | §4 `f`-tolerant synthesis — an adopted interval contains real time while ≤ `f` inputs are faulty |
//! | [`TheoremId::Stabilization`] | Self-stabilization — a state-corrupted server re-converges within a bounded window |
//! | [`TheoremId::ClusterMonotonic`] | ClusterTime invariant M — released cluster timestamps strictly increase across failovers (see [`cluster`]) |
//! | [`TheoremId::ClusterBounded`] | ClusterTime invariant B — every released timestamp lies in the issuing quorum's §4 intersection (see [`cluster`]) |
//!
//! (Theorem 8 — the *expected* IM width need not grow with the number of
//! servers — is a distributional claim; experiment E9 covers it offline.)
//!
//! The oracle is pure: it never touches the network or the servers. The
//! simulation feeds it per-sample snapshots ([`Oracle::observe_sample`]),
//! per-reset round records ([`Oracle::observe_round`]), and crash–restart
//! lifecycle transitions ([`Oracle::observe_crash`],
//! [`Oracle::observe_restart`], [`Oracle::observe_rehydration`],
//! [`Oracle::observe_bootstrap_complete`]); it returns a
//! structured [`OracleReport`] whose [`Violation`]s carry everything
//! needed to reproduce: the scenario seed, the event index, the server,
//! the predicate, and the observed-vs-bound pair.
//!
//! Which predicates are *sound* depends on the scenario. Correctness of a
//! non-faulty server, for example, is only guaranteed when no lying peer
//! can sneak a consistent-but-wrong estimate past the strategy, and the
//! envelope theorems assume a clean steady state (no loss, partitions, or
//! faults). [`OracleConfig`] therefore gates each family; the scenario
//! layer decides what applies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;

use std::fmt;

use tempo_core::bounds::{thm2_gap_bound, thm3_asynchronism_bound, thm7_asynchronism_bound};
use tempo_core::{DriftRate, Duration, Timestamp};

/// Which proved statement a check (and hence a violation) refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TheoremId {
    /// Theorems 1 & 5: a non-faulty server's interval contains real time.
    Correctness,
    /// Rules MM-1/IM-1 plus the shrink-only reset rules: between two
    /// observations `E` may grow by at most `δ(1+δ)·Δt` of real time.
    ErrorGrowth,
    /// Rules MM-2/IM-2: an accepted reset never increases `E`.
    AdoptionGuard,
    /// Theorems 2 & 4: in steady state, `E_i − min_j E_j` is bounded by
    /// `ξ + δ_i(τ + 2ξ)` (plus the proof's second-order slack).
    ErrorEnvelope,
    /// Theorem 3: MM pairwise asynchronism bound.
    MmAsynchronism,
    /// Theorem 6: an IM round's interval is never wider than its
    /// narrowest input interval.
    IntersectionWidth,
    /// Theorem 7: IM pairwise asynchronism bound.
    ImAsynchronism,
    /// §5: correct servers are pairwise consistent (their intervals
    /// intersect), i.e. they form a single consistency group.
    Consistency,
    /// Rule MM-1 held across downtime: a durably restarted server's
    /// rehydrated interval must be exactly `ε + (C − r)·δ` from the
    /// persisted reset pair, and must still contain real time (the
    /// hardware clock kept its drift bound while the server was down).
    Rehydration,
    /// §5 rejoin discipline: a crashed or booting server serves nothing,
    /// and a bootstrap reaches a quorum within a bounded number of
    /// rounds whenever one is reachable.
    Lifecycle,
    /// §4 `f`-tolerance: as long as at most `f` of a correct server's
    /// inputs are faulty (Byzantine liars included), every interval it
    /// *adopts* still contains real time. Checked at each non-recovery
    /// reset of a trusted, up, uncorrupted server.
    FTolerant,
    /// Self-stabilization: a server whose state was transiently
    /// overwritten with garbage must pass the §5 consistency screen
    /// again — and thereby rejoin the consistency group — within the
    /// configured bound (a small multiple of the resync period).
    Stabilization,
    /// ClusterTime invariant M: released cluster timestamps strictly
    /// increase — across primaries, view changes, crashes, and amnesia
    /// restarts (checked by [`cluster::ClusterOracle`]).
    ClusterMonotonic,
    /// ClusterTime invariant B: every released timestamp lies within
    /// the issuing quorum's §4 Marzullo intersection (checked by
    /// [`cluster::ClusterOracle`]).
    ClusterBounded,
}

impl TheoremId {
    /// The statement in the paper this predicate encodes.
    #[must_use]
    pub fn paper_ref(&self) -> &'static str {
        match self {
            TheoremId::Correctness => "Theorems 1 & 5",
            TheoremId::ErrorGrowth => "Rules MM-1/IM-1",
            TheoremId::AdoptionGuard => "Rules MM-2/IM-2",
            TheoremId::ErrorEnvelope => "Theorems 2 & 4",
            TheoremId::MmAsynchronism => "Theorem 3",
            TheoremId::IntersectionWidth => "Theorem 6",
            TheoremId::ImAsynchronism => "Theorem 7",
            TheoremId::Consistency => "Section 5 (consistency groups)",
            TheoremId::Rehydration => "Rule MM-1 across downtime",
            TheoremId::Lifecycle => "Section 5 (rejoin/bootstrap)",
            TheoremId::FTolerant => "Section 4 (f-tolerant synthesis)",
            TheoremId::Stabilization => "Section 5 (self-stabilization)",
            TheoremId::ClusterMonotonic => "ClusterTime invariant M (monotonic timestamps)",
            TheoremId::ClusterBounded => "ClusterTime invariant B (within the §4 intersection)",
        }
    }
}

impl fmt::Display for TheoremId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?} ({})", self.paper_ref())
    }
}

/// One observed breach of a theorem predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The scenario's master seed (reproduces the run).
    pub seed: u64,
    /// Event index: the sample index for sample-level checks, the round
    /// record index for round-level checks.
    pub event: usize,
    /// The server the predicate is *about* (for pairwise predicates, the
    /// first of the pair; `detail` names the other).
    pub server: usize,
    /// The predicate that failed.
    pub theorem: TheoremId,
    /// The observed quantity, in seconds.
    pub observed: f64,
    /// The bound it had to respect, in seconds.
    pub bound: f64,
    /// Human-readable specifics (the pair, the phase, …).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} event {} server {}: {} violated — observed {:.6e}s > bound {:.6e}s ({})",
            self.seed,
            self.event,
            self.server,
            self.theorem,
            self.observed,
            self.bound,
            self.detail
        )
    }
}

/// Steady-state envelope parameters for the bound theorems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeParams {
    /// Which strategy's asynchronism theorem applies.
    pub kind: EnvelopeKind,
    /// The round-trip bound `ξ`.
    pub xi: Duration,
    /// The *effective* inter-reset spacing (nominal period plus jitter
    /// plus collection window — see the E5/E8 experiments).
    pub tau: Duration,
    /// Real time before which the envelope is not checked (the service
    /// needs a few rounds to reach steady state).
    pub warmup: Timestamp,
    /// Extra slack granted on top of the theorem bound, absorbing the
    /// discreteness of sampling and non-simultaneous resets.
    pub slack: Duration,
}

/// Which asynchronism theorem an envelope check uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeKind {
    /// Theorems 2 & 3 (algorithm MM).
    Mm,
    /// Theorem 7 (algorithm IM).
    Im,
}

/// Which predicate families the oracle evaluates.
///
/// Soundness is scenario-dependent; the layer that builds the scenario
/// (and therefore knows about faults, loss, and the strategy) is
/// responsible for enabling only the checks the theorems actually
/// guarantee there.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Theorems 1 & 5 on every trusted server.
    pub check_correctness: bool,
    /// Rule MM-1/IM-1 growth between consecutive samples.
    pub check_error_growth: bool,
    /// Rules MM-2/IM-2: resets never increase `E` (round-level).
    pub check_adoption: bool,
    /// Theorem 6 on IM round records.
    pub check_intersection: bool,
    /// §5 pairwise consistency of trusted servers.
    pub check_consistency: bool,
    /// Crash–restart lifecycle discipline: rehydration correctness,
    /// silence while down, and the bootstrap round bound.
    pub check_lifecycle: bool,
    /// A booting server must reach a quorum within this many rounds
    /// (only checked when `check_lifecycle` is on; scenarios that
    /// legitimately starve the quorum — partitions, storms of crashed
    /// peers — should raise it or disable the family).
    pub max_bootstrap_rounds: u32,
    /// Steady-state envelope theorems (2/3 or 7), when applicable.
    pub envelope: Option<EnvelopeParams>,
    /// §4 `f`-tolerance: every non-recovery adoption of a trusted, up,
    /// uncorrupted server must contain real time. Sound only when the
    /// strategy carries a fault budget (`MarzulloTolerant`) *and* at
    /// most `f` of each server's inputs are faulty — the scenario layer
    /// arms it, exactly like the trust checks.
    pub check_f_tolerant: bool,
    /// Self-stabilization bound: a state-corrupted server must emit
    /// `Stabilized` within this much real time of its corruption (and
    /// before the run ends). `None` disables the family.
    pub stabilization_bound: Option<Duration>,
    /// Numeric tolerance added to every bound (floating-point headroom).
    pub tolerance: Duration,
}

impl OracleConfig {
    /// The always-sound safety core for the interval strategies under
    /// step application: correctness, growth, adoption, intersection,
    /// and consistency — no envelope.
    #[must_use]
    pub fn safety() -> Self {
        OracleConfig {
            check_correctness: true,
            check_error_growth: true,
            check_adoption: true,
            check_intersection: true,
            check_consistency: true,
            check_lifecycle: true,
            max_bootstrap_rounds: 8,
            envelope: None,
            check_f_tolerant: false,
            stabilization_bound: None,
            tolerance: Duration::from_secs(1e-9),
        }
    }

    /// Arms the §4 `f`-tolerance check on adoptions (see
    /// [`OracleConfig::check_f_tolerant`] for when it is sound).
    #[must_use]
    pub fn f_tolerant(mut self) -> Self {
        self.check_f_tolerant = true;
        self
    }

    /// Arms the self-stabilization window check with the given bound.
    #[must_use]
    pub fn stabilization(mut self, bound: Duration) -> Self {
        self.stabilization_bound = Some(bound);
        self
    }

    /// Adds the steady-state envelope checks.
    #[must_use]
    pub fn envelope(mut self, params: EnvelopeParams) -> Self {
        self.envelope = Some(params);
        self
    }

    /// Disables the per-server correctness and consistency checks (for
    /// scenarios where a lying peer can legitimately corrupt an honest
    /// server's estimate).
    #[must_use]
    pub fn without_trust_checks(mut self) -> Self {
        self.check_correctness = false;
        self.check_consistency = false;
        self
    }
}

/// Static per-server facts the oracle needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerView {
    /// The server's claimed drift bound `δ_i`.
    pub drift_bound: DriftRate,
    /// Whether the theorems apply to this server at all: its clock obeys
    /// the claimed bound and no fault is injected into it. Untrusted
    /// servers are observed but never checked.
    pub trusted: bool,
}

/// One server's state at a sampling instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleState {
    /// The served clock reading `C_i(t)`.
    pub clock: Timestamp,
    /// The claimed error `E_i(t)`.
    pub error: Duration,
}

/// One synthesis decision, as reported by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundObservation {
    /// Served clock at the decision instant.
    pub clock: Timestamp,
    /// `E_i` immediately before the decision.
    pub error_before: Duration,
    /// `E_i` written by the reset (`None` when the round kept the clock).
    pub error_after: Option<Duration>,
    /// Full widths of the candidate intervals (own first, each reply
    /// widened by its round-trip allowance). Empty when the strategy is
    /// not interval-synthesising (MM records leave it empty).
    pub input_widths: Vec<Duration>,
    /// True for §3 recovery adoptions, which are unconditional and may
    /// legitimately increase `E`.
    pub recovery: bool,
}

/// What a durably restarted server claims to have rehydrated from
/// stable storage (mirrors the `StateRehydrated` telemetry event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RehydrationObservation {
    /// The clock reading at the rehydration instant.
    pub clock: Timestamp,
    /// The error the server re-derived for that reading.
    pub error: Duration,
    /// The persisted reset point `r` it derived from.
    pub reset_clock: Timestamp,
    /// The persisted inherited error `ε` it derived from.
    pub persisted_error: Duration,
}

/// Keep at most this many violations verbatim; the total is still counted.
const MAX_STORED_VIOLATIONS: usize = 64;

/// The checker. Feed it samples and round records, then [`finish`].
///
/// [`finish`]: Oracle::finish
#[derive(Debug)]
pub struct Oracle {
    seed: u64,
    config: OracleConfig,
    servers: Vec<ServerView>,
    /// Last (real, error) per server, for the growth check.
    prev: Vec<Option<(Timestamp, Duration)>>,
    /// True from a crash until the matching bootstrap completes; a down
    /// server must present no samples.
    down: Vec<bool>,
    /// `Some(corruption instant)` from a `StateCorrupted` event until the
    /// matching `Stabilized`; a corrupted server is exempt from the
    /// per-sample families (its state is arbitrary by construction) but
    /// on the clock for the stabilization bound.
    corrupted: Vec<Option<Timestamp>>,
    /// Set by a recovery `RoundAdopt`, consumed by the immediately
    /// following reset event: recovery adoptions are taken on faith and
    /// exempt from the `f`-tolerance check.
    pending_recovery: Vec<bool>,
    /// The latest real time seen, so `finish` can measure how long a
    /// never-stabilized server had been corrupted.
    last_real: Timestamp,
    violations: Vec<Violation>,
    total_violations: usize,
    samples_checked: usize,
    rounds_checked: Vec<usize>,
    lifecycle_checked: usize,
    resets_checked: usize,
}

impl Oracle {
    /// Creates an oracle for a run with the given master seed and
    /// per-server facts.
    #[must_use]
    pub fn new(seed: u64, config: OracleConfig, servers: Vec<ServerView>) -> Self {
        let n = servers.len();
        Oracle {
            seed,
            config,
            servers,
            prev: vec![None; n],
            down: vec![false; n],
            corrupted: vec![None; n],
            pending_recovery: vec![false; n],
            last_real: Timestamp::from_secs(0.0),
            violations: Vec::new(),
            total_violations: 0,
            samples_checked: 0,
            rounds_checked: vec![0; n],
            lifecycle_checked: 0,
            resets_checked: 0,
        }
    }

    fn record(&mut self, violation: Violation) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(violation);
        }
    }

    fn tol(&self) -> Duration {
        self.config.tolerance
    }

    /// Checks one sampling instant: `real` is ground-truth real time,
    /// `states[i]` the snapshot of server `i` (`None` while it is not
    /// part of the service).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the server count.
    pub fn observe_sample(&mut self, real: Timestamp, states: &[Option<SampleState>]) {
        assert_eq!(
            states.len(),
            self.servers.len(),
            "oracle was built for {} servers",
            self.servers.len()
        );
        let event = self.samples_checked;
        self.samples_checked += 1;
        self.last_real = self.last_real.max(real);
        let tol = self.tol();

        for (i, state) in states.iter().enumerate() {
            let view = self.servers[i];
            let Some(s) = state else {
                self.prev[i] = None;
                continue;
            };
            if !view.trusted {
                continue;
            }
            if self.corrupted[i].is_some() {
                // An arbitrary state proves nothing about correctness,
                // growth, or consistency; the stabilization clock is
                // what this server is being held to.
                self.prev[i] = None;
                continue;
            }
            if self.config.check_lifecycle && self.down[i] {
                // The sample exists at all — a crashed/booting server
                // must stay silent until its bootstrap completes.
                self.record(Violation {
                    seed: self.seed,
                    event,
                    server: i,
                    theorem: TheoremId::Lifecycle,
                    observed: 1.0,
                    bound: 0.0,
                    detail: format!("server {i} served a sample while down"),
                });
            }
            if self.config.check_correctness {
                let offset = (s.clock - real).abs();
                if offset > s.error + tol {
                    self.record(Violation {
                        seed: self.seed,
                        event,
                        server: i,
                        theorem: TheoremId::Correctness,
                        observed: offset.as_secs(),
                        bound: s.error.as_secs(),
                        detail: format!("clock {} at real {real}", s.clock),
                    });
                }
            }
            if self.config.check_error_growth {
                if let Some((prev_real, prev_error)) = self.prev[i] {
                    let dt = (real - prev_real).max(Duration::ZERO);
                    let delta = view.drift_bound;
                    // The clock runs at most (1+δ) fast, and E grows at δ
                    // per clock second; resets only shrink it.
                    let allowed = prev_error
                        + Duration::from_secs(dt.as_secs() * delta.as_f64() * delta.inflation())
                        + tol;
                    if s.error > allowed {
                        self.record(Violation {
                            seed: self.seed,
                            event,
                            server: i,
                            theorem: TheoremId::ErrorGrowth,
                            observed: s.error.as_secs(),
                            bound: allowed.as_secs(),
                            detail: format!("error rose from {prev_error} over {dt} of real time"),
                        });
                    }
                }
            }
            self.prev[i] = Some((real, s.error));
        }

        if self.config.check_consistency {
            self.check_pairwise_consistency(real, states, event);
        }
        if let Some(envelope) = self.config.envelope {
            if real >= envelope.warmup {
                self.check_envelope(&envelope, states, event);
            }
        }
    }

    fn check_pairwise_consistency(
        &mut self,
        _real: Timestamp,
        states: &[Option<SampleState>],
        event: usize,
    ) {
        let tol = self.tol();
        for i in 0..states.len() {
            if !self.servers[i].trusted || self.corrupted[i].is_some() {
                continue;
            }
            let Some(a) = states[i] else { continue };
            for (j, b) in states.iter().enumerate().skip(i + 1) {
                if !self.servers[j].trusted || self.corrupted[j].is_some() {
                    continue;
                }
                let Some(b) = *b else { continue };
                let gap = (a.clock - b.clock).abs();
                let reach = a.error + b.error + tol;
                if gap > reach {
                    self.record(Violation {
                        seed: self.seed,
                        event,
                        server: i,
                        theorem: TheoremId::Consistency,
                        observed: gap.as_secs(),
                        bound: reach.as_secs(),
                        detail: format!("intervals of servers {i} and {j} are disjoint"),
                    });
                }
            }
        }
    }

    fn check_envelope(
        &mut self,
        envelope: &EnvelopeParams,
        states: &[Option<SampleState>],
        event: usize,
    ) {
        let tol = self.tol() + envelope.slack;
        // E_M stand-in: the most accurate trusted (and uncorrupted)
        // server right now.
        let Some(e_min) = states
            .iter()
            .zip(&self.servers)
            .enumerate()
            .filter_map(|(i, (s, v))| {
                if v.trusted && self.corrupted[i].is_none() {
                    s.map(|s| s.error)
                } else {
                    None
                }
            })
            .min()
        else {
            return;
        };

        for i in 0..states.len() {
            if !self.servers[i].trusted || self.corrupted[i].is_some() {
                continue;
            }
            let Some(a) = states[i] else { continue };
            let delta_i = self.servers[i].drift_bound;

            if envelope.kind == EnvelopeKind::Mm {
                let bound = thm2_gap_bound(envelope.xi, envelope.tau, delta_i) + tol;
                let gap = (a.error - e_min).max(Duration::ZERO);
                if gap > bound {
                    self.record(Violation {
                        seed: self.seed,
                        event,
                        server: i,
                        theorem: TheoremId::ErrorEnvelope,
                        observed: gap.as_secs(),
                        bound: bound.as_secs(),
                        detail: format!("E_i {} vs E_M {e_min}", a.error),
                    });
                }
            }

            for (j, b) in states.iter().enumerate().skip(i + 1) {
                if !self.servers[j].trusted || self.corrupted[j].is_some() {
                    continue;
                }
                let Some(b) = *b else { continue };
                let delta_j = self.servers[j].drift_bound;
                let skew = (a.clock - b.clock).abs();
                let (theorem, bound) = match envelope.kind {
                    EnvelopeKind::Mm => (
                        TheoremId::MmAsynchronism,
                        thm3_asynchronism_bound(e_min, envelope.xi, envelope.tau, delta_i, delta_j),
                    ),
                    EnvelopeKind::Im => (
                        TheoremId::ImAsynchronism,
                        // The extra ξ absorbs the one-way skew of
                        // non-simultaneous resets (cf. experiment E8).
                        thm7_asynchronism_bound(envelope.xi, envelope.tau, delta_i, delta_j)
                            + envelope.xi,
                    ),
                };
                let bound = bound + tol;
                if skew > bound {
                    self.record(Violation {
                        seed: self.seed,
                        event,
                        server: i,
                        theorem,
                        observed: skew.as_secs(),
                        bound: bound.as_secs(),
                        detail: format!("pair ({i}, {j})"),
                    });
                }
            }
        }
    }

    /// Checks one synthesis decision of server `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_round(&mut self, server: usize, round: &RoundObservation) {
        let view = self.servers[server];
        let event = self.rounds_checked[server];
        self.rounds_checked[server] += 1;
        // The reset event that follows this record inherits its recovery
        // flag: unconditional (§3-style) adoptions are exempt from the
        // f-tolerance check.
        self.pending_recovery[server] = round.recovery;
        if !view.trusted || self.corrupted[server].is_some() {
            return;
        }
        let tol = self.tol();
        let Some(after) = round.error_after else {
            return;
        };
        if self.config.check_adoption && !round.recovery && after > round.error_before + tol {
            self.record(Violation {
                seed: self.seed,
                event,
                server,
                theorem: TheoremId::AdoptionGuard,
                observed: after.as_secs(),
                bound: round.error_before.as_secs(),
                detail: format!("reset at clock {} increased E", round.clock),
            });
        }
        if self.config.check_intersection && !round.input_widths.is_empty() {
            let narrowest = round
                .input_widths
                .iter()
                .copied()
                .fold(round.input_widths[0], Duration::min);
            let width = after + after;
            if width > narrowest + tol {
                self.record(Violation {
                    seed: self.seed,
                    event,
                    server,
                    theorem: TheoremId::IntersectionWidth,
                    observed: width.as_secs(),
                    bound: narrowest.as_secs(),
                    detail: format!(
                        "intersection of {} inputs wider than the narrowest",
                        round.input_widths.len()
                    ),
                });
            }
        }
    }

    /// Checks one applied reset (a `ClockStep`/`ClockSlew` event):
    /// under the §4 fault budget, the interval a correct server *adopts*
    /// — centre `center`, radius `error`, applied at real time `at` —
    /// must contain real time. Recovery adoptions (flagged by the
    /// preceding round record) are taken on faith and exempt, as are
    /// down, corrupted, and untrusted servers.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_reset(
        &mut self,
        server: usize,
        at: Timestamp,
        center: Timestamp,
        error: Duration,
    ) {
        let recovery = std::mem::take(&mut self.pending_recovery[server]);
        if !self.config.check_f_tolerant {
            return;
        }
        let view = self.servers[server];
        if !view.trusted || self.down[server] || self.corrupted[server].is_some() || recovery {
            return;
        }
        self.resets_checked += 1;
        let offset = (center - at).abs();
        if offset > error + self.tol() {
            self.record(Violation {
                seed: self.seed,
                event: self.samples_checked,
                server,
                theorem: TheoremId::FTolerant,
                observed: offset.as_secs(),
                bound: error.as_secs(),
                detail: format!(
                    "adopted interval (centre {center}, radius {error}) excludes real time {at}"
                ),
            });
        }
    }

    /// Records that `server`'s state was transiently overwritten with
    /// garbage (a `StateCorrupted` event): from here until the matching
    /// [`observe_stabilized`] the per-sample families are suspended for
    /// it and the stabilization clock runs.
    ///
    /// [`observe_stabilized`]: Oracle::observe_stabilized
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_corruption(&mut self, server: usize, at: Timestamp) {
        self.lifecycle_checked += 1;
        self.last_real = self.last_real.max(at);
        self.corrupted[server] = Some(at);
        // The growth baseline is garbage now too.
        self.prev[server] = None;
    }

    /// Records that `server` declared itself stabilized `elapsed` after
    /// its corruption: the window must respect the configured bound.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_stabilized(&mut self, server: usize, at: Timestamp, elapsed: Duration) {
        self.lifecycle_checked += 1;
        self.last_real = self.last_real.max(at);
        self.corrupted[server] = None;
        // Fresh start for the growth check: the pre-corruption baseline
        // is ancient history.
        self.prev[server] = None;
        let Some(bound) = self.config.stabilization_bound else {
            return;
        };
        if !self.servers[server].trusted {
            return;
        }
        if elapsed > bound + self.tol() {
            self.record(Violation {
                seed: self.seed,
                event: self.samples_checked,
                server,
                theorem: TheoremId::Stabilization,
                observed: elapsed.as_secs(),
                bound: bound.as_secs(),
                detail: format!("stabilized only {elapsed} after the corruption"),
            });
        }
    }

    /// Records that `server` crashed: from here until its bootstrap
    /// completes it must present no samples.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_crash(&mut self, server: usize) {
        self.lifecycle_checked += 1;
        self.down[server] = true;
        // The growth baseline dies with the process; the hardware clock
        // keeps running, so the next observed error may be much larger.
        self.prev[server] = None;
    }

    /// Records that `server` restarted. The server stays *down* for
    /// checking purposes until [`observe_bootstrap_complete`] — a
    /// durable restart promotes immediately (it completes a zero-round
    /// bootstrap), an amnesia restart only after a §5 quorum read.
    ///
    /// [`observe_bootstrap_complete`]: Oracle::observe_bootstrap_complete
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_restart(&mut self, server: usize, _amnesia: bool) {
        self.lifecycle_checked += 1;
        self.down[server] = true;
    }

    /// Checks a durable restart's rehydrated state: the re-derived error
    /// must be exactly rule MM-1 applied to the persisted `(r, ε)` pair,
    /// and the rehydrated interval must still contain real time `real`
    /// (the hardware clock honoured its drift bound while the server was
    /// down).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_rehydration(
        &mut self,
        server: usize,
        real: Timestamp,
        obs: &RehydrationObservation,
    ) {
        self.lifecycle_checked += 1;
        let view = self.servers[server];
        if !view.trusted || !self.config.check_lifecycle {
            return;
        }
        let event = self.samples_checked;
        let tol = self.tol();
        let since_reset = (obs.clock - obs.reset_clock).max(Duration::ZERO);
        let expected = obs.persisted_error + since_reset * view.drift_bound;
        let derivation_gap = (obs.error - expected).abs();
        if derivation_gap > tol {
            self.record(Violation {
                seed: self.seed,
                event,
                server,
                theorem: TheoremId::Rehydration,
                observed: obs.error.as_secs(),
                bound: expected.as_secs(),
                detail: format!(
                    "rehydrated E differs from ε + (C − r)·δ with ε {} r {}",
                    obs.persisted_error, obs.reset_clock
                ),
            });
        }
        let offset = (obs.clock - real).abs();
        if offset > obs.error + tol {
            self.record(Violation {
                seed: self.seed,
                event,
                server,
                theorem: TheoremId::Rehydration,
                observed: offset.as_secs(),
                bound: obs.error.as_secs(),
                detail: format!(
                    "rehydrated interval excludes real time (clock {} at real {real})",
                    obs.clock
                ),
            });
        }
    }

    /// Records that `server` finished bootstrapping in `rounds` quorum
    /// rounds (zero for a durable restart) and may serve again.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn observe_bootstrap_complete(&mut self, server: usize, rounds: u32) {
        self.lifecycle_checked += 1;
        let trusted = self.servers[server].trusted;
        self.down[server] = false;
        if !trusted || !self.config.check_lifecycle {
            return;
        }
        if rounds > self.config.max_bootstrap_rounds {
            self.record(Violation {
                seed: self.seed,
                event: self.samples_checked,
                server,
                theorem: TheoremId::Lifecycle,
                observed: f64::from(rounds),
                bound: f64::from(self.config.max_bootstrap_rounds),
                detail: format!("bootstrap took {rounds} rounds"),
            });
        }
    }

    /// Consumes the oracle and returns its findings. A server still
    /// corrupted at the end of the run — its stabilization never came —
    /// is flagged here if the stabilization family is armed.
    #[must_use]
    pub fn finish(mut self) -> OracleReport {
        if let Some(bound) = self.config.stabilization_bound {
            for i in 0..self.servers.len() {
                let Some(since) = self.corrupted[i] else {
                    continue;
                };
                if !self.servers[i].trusted {
                    continue;
                }
                let outstanding = (self.last_real - since).max(Duration::ZERO);
                self.record(Violation {
                    seed: self.seed,
                    event: self.samples_checked,
                    server: i,
                    theorem: TheoremId::Stabilization,
                    observed: outstanding.as_secs(),
                    bound: bound.as_secs(),
                    detail: format!("never stabilized: corrupted since {since}"),
                });
            }
        }
        OracleReport {
            violations: self.violations,
            total_violations: self.total_violations,
            samples_checked: self.samples_checked,
            rounds_checked: self.rounds_checked.iter().sum(),
            lifecycle_checked: self.lifecycle_checked,
            resets_checked: self.resets_checked,
        }
    }
}

/// The structured outcome of an oracle-gated run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// The first [`MAX_STORED_VIOLATIONS`] violations, in event order.
    pub violations: Vec<Violation>,
    /// The total number of violations (may exceed `violations.len()`).
    pub total_violations: usize,
    /// Sampling instants checked.
    pub samples_checked: usize,
    /// Round records checked.
    pub rounds_checked: usize,
    /// Crash–restart lifecycle events observed.
    pub lifecycle_checked: usize,
    /// Applied resets put through the §4 `f`-tolerance check.
    pub resets_checked: usize,
}

impl OracleReport {
    /// True when no predicate was ever violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// The first violation, if any (the natural minimal witness).
    #[must_use]
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle: {} samples, {} rounds, {} lifecycle events checked, violations: {}",
            self.samples_checked,
            self.rounds_checked,
            self.lifecycle_checked,
            self.total_violations
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.total_violations > self.violations.len() {
            writeln!(
                f,
                "  … and {} more",
                self.total_violations - self.violations.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    fn views(n: usize) -> Vec<ServerView> {
        vec![
            ServerView {
                drift_bound: DriftRate::new(1e-4),
                trusted: true,
            };
            n
        ]
    }

    fn state(clock: f64, error: f64) -> Option<SampleState> {
        Some(SampleState {
            clock: ts(clock),
            error: dur(error),
        })
    }

    #[test]
    fn clean_run_reports_clean() {
        let mut o = Oracle::new(7, OracleConfig::safety(), views(2));
        o.observe_sample(ts(10.0), &[state(10.001, 0.01), state(9.999, 0.01)]);
        o.observe_sample(ts(20.0), &[state(20.001, 0.011), state(19.999, 0.011)]);
        let report = o.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.samples_checked, 2);
    }

    #[test]
    fn incorrect_server_is_flagged_with_seed_and_event() {
        let mut o = Oracle::new(42, OracleConfig::safety(), views(2));
        o.observe_sample(ts(10.0), &[state(10.0, 0.01), state(10.0, 0.01)]);
        // Server 1 claims 5 ms of error while being 50 ms off.
        o.observe_sample(ts(20.0), &[state(20.0, 0.011), state(20.05, 0.005)]);
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::Correctness);
        assert_eq!(v.seed, 42);
        assert_eq!(v.event, 1);
        assert_eq!(v.server, 1);
        assert!(v.observed > v.bound);
    }

    #[test]
    fn untrusted_servers_are_exempt() {
        let mut servers = views(2);
        servers[1].trusted = false;
        let mut o = Oracle::new(0, OracleConfig::safety(), servers);
        o.observe_sample(ts(10.0), &[state(10.0, 0.01), state(13.0, 0.001)]);
        assert!(o.finish().is_clean());
    }

    #[test]
    fn error_jump_beyond_drift_growth_is_flagged() {
        let mut o = Oracle::new(3, OracleConfig::safety(), views(1));
        o.observe_sample(ts(0.0), &[state(0.0, 0.010)]);
        // δ = 1e-4 over 2 s allows ≈ 0.2 ms of growth; 5 ms is a breach
        // (exactly what a weakened MM-2 adoption guard would produce).
        o.observe_sample(ts(2.0), &[state(2.0, 0.015)]);
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::ErrorGrowth);
    }

    #[test]
    fn error_growth_within_drift_passes() {
        let mut o = Oracle::new(3, OracleConfig::safety(), views(1));
        o.observe_sample(ts(0.0), &[state(0.0, 0.010)]);
        o.observe_sample(ts(2.0), &[state(2.0, 0.010 + 1.9e-4)]);
        // A reset that shrinks the error is always fine.
        o.observe_sample(ts(4.0), &[state(4.0, 0.002)]);
        assert!(o.finish().is_clean());
    }

    #[test]
    fn inactive_gap_resets_growth_baseline() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_sample(ts(0.0), &[state(0.0, 0.010)]);
        o.observe_sample(ts(2.0), &[None]);
        // After an absence the baseline must not be the stale sample.
        o.observe_sample(ts(4.0), &[state(4.0, 0.5)]);
        assert!(o.finish().is_clean());
    }

    #[test]
    fn disjoint_intervals_violate_consistency() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(2));
        // Both "correct-looking" individually is impossible here, so turn
        // correctness off to isolate the §5 predicate.
        let mut cfg = OracleConfig::safety();
        cfg.check_correctness = false;
        let mut o2 = Oracle::new(0, cfg, views(2));
        o2.observe_sample(ts(10.0), &[state(10.0, 0.01), state(10.5, 0.01)]);
        let report = o2.finish();
        assert_eq!(
            report.first().expect("violation").theorem,
            TheoremId::Consistency
        );
        // And the plain-safety oracle flags the same instant (as
        // correctness), proving the checks overlap as intended.
        o.observe_sample(ts(10.0), &[state(10.0, 0.01), state(10.5, 0.01)]);
        assert!(!o.finish().is_clean());
    }

    #[test]
    fn adoption_that_increases_error_is_flagged() {
        let mut o = Oracle::new(9, OracleConfig::safety(), views(1));
        o.observe_round(
            0,
            &RoundObservation {
                clock: ts(30.0),
                error_before: dur(0.010),
                error_after: Some(dur(0.025)),
                input_widths: vec![],
                recovery: false,
            },
        );
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::AdoptionGuard);
        assert_eq!(v.seed, 9);
    }

    #[test]
    fn recovery_adoptions_may_increase_error() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_round(
            0,
            &RoundObservation {
                clock: ts(30.0),
                error_before: dur(0.010),
                error_after: Some(dur(0.025)),
                input_widths: vec![],
                recovery: true,
            },
        );
        assert!(o.finish().is_clean());
    }

    #[test]
    fn intersection_wider_than_narrowest_input_is_flagged() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_round(
            0,
            &RoundObservation {
                clock: ts(30.0),
                error_before: dur(0.050),
                error_after: Some(dur(0.040)), // width 0.08 > narrowest 0.06
                input_widths: vec![dur(0.10), dur(0.06)],
                recovery: false,
            },
        );
        let report = o.finish();
        assert_eq!(
            report.first().expect("violation").theorem,
            TheoremId::IntersectionWidth
        );
    }

    #[test]
    fn sound_intersection_passes() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_round(
            0,
            &RoundObservation {
                clock: ts(30.0),
                error_before: dur(0.050),
                error_after: Some(dur(0.020)),
                input_widths: vec![dur(0.10), dur(0.06)],
                recovery: false,
            },
        );
        assert!(o.finish().is_clean());
    }

    #[test]
    fn mm_envelope_flags_runaway_error_gap() {
        let params = EnvelopeParams {
            kind: EnvelopeKind::Mm,
            xi: dur(0.01),
            tau: dur(10.0),
            warmup: ts(5.0),
            slack: Duration::ZERO,
        };
        let mut o = Oracle::new(0, OracleConfig::safety().envelope(params), views(2));
        // Before warmup nothing is checked.
        o.observe_sample(ts(1.0), &[state(1.0, 0.5), state(1.0, 0.01)]);
        // After warmup a 0.5 s error against a 10 ms best is far beyond
        // ξ + δ(τ+2ξ) ≈ 11 ms.
        o.observe_sample(ts(8.0), &[state(8.0, 0.5), state(8.0, 0.01)]);
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::ErrorEnvelope);
        assert_eq!(v.event, 1);
    }

    #[test]
    fn im_envelope_flags_excess_skew() {
        let params = EnvelopeParams {
            kind: EnvelopeKind::Im,
            xi: dur(0.01),
            tau: dur(10.0),
            warmup: ts(0.0),
            slack: Duration::ZERO,
        };
        let mut cfg = OracleConfig::safety().envelope(params);
        cfg.check_correctness = false;
        cfg.check_consistency = false;
        let mut o = Oracle::new(0, cfg, views(2));
        // Thm 7 bound ≈ 0.01 + 2e-4·10 + 0.01 = 0.022; skew of 0.3 breaks it.
        o.observe_sample(ts(8.0), &[state(8.0, 0.5), state(8.3, 0.5)]);
        let report = o.finish();
        assert_eq!(
            report.first().expect("violation").theorem,
            TheoremId::ImAsynchronism
        );
    }

    #[test]
    fn violation_overflow_is_counted_not_stored() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        for k in 0..(MAX_STORED_VIOLATIONS + 10) {
            o.observe_sample(ts(k as f64), &[state(k as f64 + 1.0, 0.001)]);
        }
        let report = o.finish();
        assert_eq!(report.violations.len(), MAX_STORED_VIOLATIONS);
        assert!(report.total_violations > MAX_STORED_VIOLATIONS);
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("more"), "{text}");
    }

    #[test]
    fn theorem_ids_cite_the_paper() {
        assert!(TheoremId::Correctness.paper_ref().contains("1"));
        assert!(TheoremId::IntersectionWidth.paper_ref().contains("6"));
        assert!(TheoremId::ImAsynchronism.paper_ref().contains("7"));
        assert!(TheoremId::Consistency.paper_ref().contains("5"));
        assert!(TheoremId::Rehydration.paper_ref().contains("MM-1"));
        assert!(TheoremId::Lifecycle.paper_ref().contains("5"));
    }

    #[test]
    fn sample_served_while_down_is_flagged() {
        let mut o = Oracle::new(11, OracleConfig::safety(), views(2));
        o.observe_sample(ts(10.0), &[state(10.0, 0.01), state(10.0, 0.01)]);
        o.observe_crash(1);
        // Silence is what the lifecycle demands …
        o.observe_sample(ts(20.0), &[state(20.0, 0.011), None]);
        // … so a present sample is a breach even if numerically correct.
        o.observe_sample(ts(30.0), &[state(30.0, 0.012), state(30.0, 0.01)]);
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::Lifecycle);
        assert_eq!(v.server, 1);
        assert_eq!(v.event, 2);
        assert_eq!(report.total_violations, 1);
    }

    #[test]
    fn full_lifecycle_with_silence_is_clean() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(2));
        o.observe_sample(ts(10.0), &[state(10.0, 0.01), state(10.0, 0.01)]);
        o.observe_crash(1);
        o.observe_sample(ts(20.0), &[state(20.0, 0.011), None]);
        o.observe_restart(1, true);
        o.observe_sample(ts(25.0), &[state(25.0, 0.0112), None]);
        o.observe_bootstrap_complete(1, 2);
        o.observe_sample(ts(30.0), &[state(30.0, 0.0114), state(30.0, 0.02)]);
        let report = o.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.lifecycle_checked, 3);
    }

    #[test]
    fn bootstrap_beyond_round_bound_is_flagged() {
        let mut o = Oracle::new(5, OracleConfig::safety(), views(1));
        o.observe_crash(0);
        o.observe_restart(0, true);
        o.observe_bootstrap_complete(0, 9);
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::Lifecycle);
        assert!(v.observed > v.bound);
    }

    #[test]
    fn faithful_rehydration_passes() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_crash(0);
        o.observe_restart(0, false);
        // δ = 1e-4, 100 s since the persisted reset → E = 1 ms + 10 ms.
        o.observe_rehydration(
            0,
            ts(200.0),
            &RehydrationObservation {
                clock: ts(200.002),
                error: dur(0.011),
                reset_clock: ts(100.002),
                persisted_error: dur(0.001),
            },
        );
        o.observe_bootstrap_complete(0, 0);
        assert!(o.finish().is_clean());
    }

    #[test]
    fn understated_rehydrated_error_is_flagged() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_crash(0);
        o.observe_restart(0, false);
        // Claims the persisted error verbatim, ignoring 100 s of drift.
        o.observe_rehydration(
            0,
            ts(200.0),
            &RehydrationObservation {
                clock: ts(200.0),
                error: dur(0.001),
                reset_clock: ts(100.0),
                persisted_error: dur(0.001),
            },
        );
        let report = o.finish();
        assert_eq!(
            report.first().expect("violation").theorem,
            TheoremId::Rehydration
        );
    }

    #[test]
    fn rehydrated_interval_excluding_real_time_is_flagged() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_crash(0);
        o.observe_restart(0, false);
        // Correctly derived, but the clock is 1 s off with 11 ms of error:
        // the downtime drift bound cannot have held.
        o.observe_rehydration(
            0,
            ts(200.0),
            &RehydrationObservation {
                clock: ts(201.0),
                error: dur(0.011),
                reset_clock: ts(101.0),
                persisted_error: dur(0.001),
            },
        );
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::Rehydration);
        assert!(v.detail.contains("excludes real time"), "{}", v.detail);
    }

    #[test]
    fn untrusted_servers_skip_lifecycle_checks() {
        let mut servers = views(1);
        servers[0].trusted = false;
        let mut o = Oracle::new(0, OracleConfig::safety(), servers);
        o.observe_crash(0);
        o.observe_sample(ts(10.0), &[state(10.0, 0.01)]);
        o.observe_restart(0, true);
        o.observe_bootstrap_complete(0, 99);
        assert!(o.finish().is_clean());
    }

    #[test]
    fn lifecycle_checks_can_be_disabled() {
        let mut cfg = OracleConfig::safety();
        cfg.check_lifecycle = false;
        let mut o = Oracle::new(0, cfg, views(1));
        o.observe_crash(0);
        o.observe_sample(ts(10.0), &[state(10.0, 0.01)]);
        o.observe_bootstrap_complete(0, 99);
        assert!(o.finish().is_clean());
    }

    #[test]
    fn adoption_excluding_real_time_violates_f_tolerance() {
        let mut o = Oracle::new(13, OracleConfig::safety().f_tolerant(), views(1));
        // Sound adoption: centre 30.02 with radius 50 ms contains 30.0.
        o.observe_reset(0, ts(30.0), ts(30.02), dur(0.05));
        // A colluding clique beyond the budget drags the hull off true
        // time: centre 30.5 with radius 10 ms excludes 30.0.
        o.observe_reset(0, ts(30.0), ts(30.5), dur(0.01));
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::FTolerant);
        assert_eq!(v.seed, 13);
        assert_eq!(report.total_violations, 1);
        assert_eq!(report.resets_checked, 2);
    }

    #[test]
    fn f_tolerance_exempts_recovery_down_and_unarmed() {
        // Unarmed: nothing is checked at all.
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_reset(0, ts(30.0), ts(40.0), dur(0.01));
        let report = o.finish();
        assert!(report.is_clean());
        assert_eq!(report.resets_checked, 0);
        // Recovery adoptions are taken on faith.
        let mut o = Oracle::new(0, OracleConfig::safety().f_tolerant(), views(1));
        o.observe_round(
            0,
            &RoundObservation {
                clock: ts(30.0),
                error_before: dur(0.01),
                error_after: Some(dur(0.5)),
                input_widths: vec![],
                recovery: true,
            },
        );
        o.observe_reset(0, ts(30.0), ts(40.0), dur(0.01));
        // … but only the one immediately following the recovery record.
        o.observe_reset(0, ts(50.0), ts(60.0), dur(0.01));
        let report = o.finish();
        assert_eq!(report.total_violations, 1);
        // A down server's bootstrap resets are not adoption decisions.
        let mut o = Oracle::new(0, OracleConfig::safety().f_tolerant(), views(1));
        o.observe_crash(0);
        o.observe_restart(0, true);
        o.observe_reset(0, ts(30.0), ts(40.0), dur(0.01));
        assert!(o.finish().is_clean());
    }

    #[test]
    fn corruption_window_suspends_sample_checks() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(2));
        o.observe_sample(ts(10.0), &[state(10.0, 0.01), state(10.0, 0.01)]);
        o.observe_corruption(1, ts(15.0));
        // Server 1 is 40 s off with a tiny claim — correctness, growth,
        // and consistency would all fire, but the window exempts it.
        o.observe_sample(ts(20.0), &[state(20.0, 0.011), state(60.0, 0.001)]);
        o.observe_stabilized(1, ts(25.0), dur(10.0));
        o.observe_sample(ts(30.0), &[state(30.0, 0.012), state(30.0, 0.02)]);
        let report = o.finish();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn slow_stabilization_is_flagged() {
        let cfg = OracleConfig::safety().stabilization(dur(30.0));
        let mut o = Oracle::new(17, cfg, views(1));
        o.observe_corruption(0, ts(100.0));
        o.observe_stabilized(0, ts(145.0), dur(45.0));
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::Stabilization);
        assert_eq!(v.seed, 17);
        assert!(v.observed > v.bound);
    }

    #[test]
    fn stabilization_within_bound_is_clean() {
        let cfg = OracleConfig::safety().stabilization(dur(30.0));
        let mut o = Oracle::new(0, cfg, views(1));
        o.observe_corruption(0, ts(100.0));
        o.observe_stabilized(0, ts(112.0), dur(12.0));
        assert!(o.finish().is_clean());
    }

    #[test]
    fn never_stabilizing_is_flagged_at_finish() {
        let cfg = OracleConfig::safety().stabilization(dur(30.0));
        let mut o = Oracle::new(0, cfg, views(2));
        o.observe_corruption(1, ts(100.0));
        o.observe_sample(ts(200.0), &[state(200.0, 0.01), state(260.0, 0.001)]);
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::Stabilization);
        assert_eq!(v.server, 1);
        assert!(v.detail.contains("never stabilized"), "{}", v.detail);
        // ~100 s outstanding against a 30 s bound.
        assert!(v.observed > v.bound);
    }

    #[test]
    fn new_theorem_ids_cite_the_paper() {
        assert!(TheoremId::FTolerant.paper_ref().contains("4"));
        assert!(TheoremId::Stabilization.paper_ref().contains("5"));
    }

    #[test]
    fn crash_resets_the_growth_baseline() {
        let mut o = Oracle::new(0, OracleConfig::safety(), views(1));
        o.observe_sample(ts(0.0), &[state(0.0, 0.001)]);
        o.observe_crash(0);
        o.observe_bootstrap_complete(0, 0);
        // The error grew across downtime far beyond per-sample drift;
        // that is legitimate — the baseline died with the process.
        o.observe_sample(ts(100.0), &[state(100.0, 0.5)]);
        assert!(o.finish().is_clean());
    }
}
