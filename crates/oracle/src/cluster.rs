//! Online checking of the ClusterTime invariants.
//!
//! The cluster layer (crate `tempo-cluster`) extends the paper's
//! service with strictly monotonic cluster-wide timestamps. Two
//! invariants define it, and the simulator can check both mechanically
//! from the telemetry stream:
//!
//! * [`TheoremId::ClusterMonotonic`] — released timestamps strictly
//!   increase, globally: across primaries, view changes, crashes, and
//!   amnesia restarts. Checked in release order over the whole run.
//! * [`TheoremId::ClusterBounded`] — every released timestamp lies
//!   within the Marzullo intersection of the issuing quorum's interval
//!   readings (converted to the cluster's microsecond ticks), so
//!   cluster time is never fiction: some instant the quorum considered
//!   possible carries each label.

use std::fmt;

use tempo_core::{Duration, Timestamp};

use crate::{TheoremId, Violation};

/// Keep at most this many violations verbatim; the total is counted.
const MAX_STORED_VIOLATIONS: usize = 64;

/// One released cluster timestamp, as reported by telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IssueObservation {
    /// The replica that released it.
    pub server: usize,
    /// The view it was issued under.
    pub view: u64,
    /// The cluster timestamp, in microsecond ticks.
    pub timestamp: u64,
    /// Lower edge of the quorum intersection backing the issue.
    pub lo: Timestamp,
    /// Upper edge of the quorum intersection backing the issue.
    pub hi: Timestamp,
}

/// The ClusterTime checker. Feed it released timestamps (in release
/// order) and view changes, then [`finish`](ClusterOracle::finish).
#[derive(Debug)]
pub struct ClusterOracle {
    seed: u64,
    tolerance: Duration,
    /// The last released timestamp with its issuer and view.
    last: Option<(u64, usize, u64)>,
    issues_checked: usize,
    view_changes: usize,
    highest_view: u64,
    violations: Vec<Violation>,
    total_violations: usize,
}

impl ClusterOracle {
    /// Creates a checker for a run with the given master seed. The
    /// tolerance absorbs the microsecond truncation of the tick
    /// conversion (2 µs covers both edges).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ClusterOracle {
            seed,
            tolerance: Duration::from_micros(2.0),
            last: None,
            issues_checked: 0,
            view_changes: 0,
            highest_view: 0,
            violations: Vec::new(),
            total_violations: 0,
        }
    }

    fn record(&mut self, violation: Violation) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(violation);
        }
    }

    /// Checks one released timestamp. Call in release order (the order
    /// `TsIssued` telemetry events were emitted).
    pub fn observe_issue(&mut self, obs: &IssueObservation) {
        let event = self.issues_checked;
        self.issues_checked += 1;

        if let Some((prev_ts, prev_server, prev_view)) = self.last {
            if obs.timestamp <= prev_ts {
                self.record(Violation {
                    seed: self.seed,
                    event,
                    server: obs.server,
                    theorem: TheoremId::ClusterMonotonic,
                    observed: obs.timestamp as f64 * 1e-6,
                    bound: prev_ts as f64 * 1e-6,
                    detail: format!(
                        "ts {} (view {}) after ts {prev_ts} from server \
                         {prev_server} (view {prev_view})",
                        obs.timestamp, obs.view
                    ),
                });
            }
        }
        self.last = Some((obs.timestamp, obs.server, obs.view));

        // The tick conversion floors to a microsecond, so compare in
        // seconds with matching tolerance.
        let ts_secs = obs.timestamp as f64 * 1e-6;
        let lo = obs.lo.as_secs() - self.tolerance.as_secs();
        let hi = obs.hi.as_secs() + self.tolerance.as_secs();
        if ts_secs < lo || ts_secs > hi {
            let edge = if ts_secs < lo { obs.lo } else { obs.hi };
            self.record(Violation {
                seed: self.seed,
                event,
                server: obs.server,
                theorem: TheoremId::ClusterBounded,
                observed: ts_secs,
                bound: edge.as_secs(),
                detail: format!(
                    "ts {} outside the issuing intersection [{}, {}]",
                    obs.timestamp, obs.lo, obs.hi
                ),
            });
        }
    }

    /// Records a view change (context for violation messages and the
    /// report's failover count).
    pub fn observe_view_change(&mut self, view: u64) {
        self.view_changes += 1;
        self.highest_view = self.highest_view.max(view);
    }

    /// Consumes the checker and returns its findings.
    #[must_use]
    pub fn finish(self) -> ClusterReport {
        ClusterReport {
            violations: self.violations,
            total_violations: self.total_violations,
            issues_checked: self.issues_checked,
            view_changes: self.view_changes,
            highest_view: self.highest_view,
        }
    }
}

/// The structured outcome of a ClusterTime-checked run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The first [`MAX_STORED_VIOLATIONS`] violations, in release order.
    pub violations: Vec<Violation>,
    /// The total number of violations (may exceed `violations.len()`).
    pub total_violations: usize,
    /// Released timestamps checked.
    pub issues_checked: usize,
    /// View-change adoptions observed (each failover produces several —
    /// one per adopting replica).
    pub view_changes: usize,
    /// The highest view any replica reached.
    pub highest_view: u64,
}

impl ClusterReport {
    /// True when no invariant was ever violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// The first violation, if any (the natural minimal witness).
    #[must_use]
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster oracle: {} issues checked across {} view changes \
             (highest view {}), violations: {}",
            self.issues_checked, self.view_changes, self.highest_view, self.total_violations
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.total_violations > self.violations.len() {
            writeln!(
                f,
                "  … and {} more",
                self.total_violations - self.violations.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn issue(server: usize, view: u64, timestamp: u64, lo: f64, hi: f64) -> IssueObservation {
        IssueObservation {
            server,
            view,
            timestamp,
            lo: ts(lo),
            hi: ts(hi),
        }
    }

    #[test]
    fn clean_monotonic_stream_is_clean() {
        let mut o = ClusterOracle::new(7);
        o.observe_issue(&issue(0, 0, 10_000_000, 9.9, 10.2));
        o.observe_issue(&issue(0, 0, 10_050_000, 9.95, 10.25));
        o.observe_view_change(1);
        o.observe_issue(&issue(1, 1, 10_500_000, 10.4, 10.7));
        let report = o.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.issues_checked, 3);
        assert_eq!(report.view_changes, 1);
        assert_eq!(report.highest_view, 1);
    }

    #[test]
    fn regression_across_failover_is_flagged() {
        let mut o = ClusterOracle::new(42);
        o.observe_issue(&issue(0, 0, 11_000_000, 10.0, 12.0));
        o.observe_view_change(1);
        // The successor reissues a lower timestamp — the exact breach
        // the skip-the-flush bug produces.
        o.observe_issue(&issue(1, 1, 10_500_000, 10.0, 12.0));
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::ClusterMonotonic);
        assert_eq!(v.seed, 42);
        assert_eq!(v.event, 1);
        assert_eq!(v.server, 1);
        assert!(v.detail.contains("view 1"), "{}", v.detail);
    }

    #[test]
    fn equal_timestamps_are_a_regression() {
        let mut o = ClusterOracle::new(0);
        o.observe_issue(&issue(0, 0, 10_000_000, 9.0, 11.0));
        o.observe_issue(&issue(0, 0, 10_000_000, 9.0, 11.0));
        assert!(!o.finish().is_clean());
    }

    #[test]
    fn timestamp_outside_intersection_is_flagged() {
        let mut o = ClusterOracle::new(5);
        // 13 s ticks against an intersection ending at 12 s.
        o.observe_issue(&issue(0, 0, 13_000_000, 10.0, 12.0));
        let report = o.finish();
        let v = report.first().expect("violation");
        assert_eq!(v.theorem, TheoremId::ClusterBounded);
        assert!(v.detail.contains("outside"), "{}", v.detail);
        // Below the lower edge fires too.
        let mut o = ClusterOracle::new(5);
        o.observe_issue(&issue(0, 0, 9_000_000, 10.0, 12.0));
        assert!(!o.finish().is_clean());
    }

    #[test]
    fn truncation_tolerance_is_honoured() {
        let mut o = ClusterOracle::new(0);
        // Exactly the floor of the upper edge: inside with tolerance.
        o.observe_issue(&issue(0, 0, 11_999_999, 10.0, 12.0));
        assert!(o.finish().is_clean());
    }

    #[test]
    fn violation_overflow_is_counted_not_stored() {
        let mut o = ClusterOracle::new(0);
        o.observe_issue(&issue(0, 0, u64::MAX, 0.0, f64::MAX));
        for _ in 0..(MAX_STORED_VIOLATIONS + 10) {
            o.observe_issue(&issue(0, 0, 1, 0.0, 10.0));
        }
        let report = o.finish();
        assert_eq!(report.violations.len(), MAX_STORED_VIOLATIONS);
        assert!(report.total_violations > MAX_STORED_VIOLATIONS);
        let text = report.to_string();
        assert!(text.contains("more"), "{text}");
    }

    #[test]
    fn cluster_theorem_ids_name_their_invariants() {
        assert!(TheoremId::ClusterMonotonic
            .paper_ref()
            .contains("monotonic"));
        assert!(TheoremId::ClusterBounded
            .paper_ref()
            .contains("intersection"));
    }
}
