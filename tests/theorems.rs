//! Theorem-level integration tests: every experiment in the DESIGN.md
//! index reproduces the paper's claim. (The experiments binary prints
//! the full reports; these tests pin the pass/fail verdicts.)

use tempo::sim::experiments as ex;

#[test]
fn e1_figure1_intervals_grow_and_shift() {
    let fig = ex::figure1();
    assert!(fig.all_correct());
    // Interval widths at the last instant exceed the first.
    for i in 0..3 {
        assert!(
            fig.cells[2][i].leading - fig.cells[2][i].trailing
                > fig.cells[0][i].leading - fig.cells[0][i].trailing
        );
    }
}

#[test]
fn e2_figure2_theorem6() {
    let fig = ex::figure2();
    assert!(fig.subset_case.single_source);
    assert!(!fig.offset_case.single_source);
    assert!(fig.theorem6_holds());
}

#[test]
fn e3_figure3_mm_recovers_im_does_not() {
    let fig = ex::figure3();
    assert!(fig.mm_correct);
    assert!(!fig.im_correct);
}

#[test]
fn e4_figure4_three_consistency_groups() {
    let fig = ex::figure4();
    assert!(fig.service_inconsistent());
    assert_eq!(fig.groups.len(), 3);
}

#[test]
fn e5_e6_theorems_2_and_3_bounds_hold() {
    let bounds = ex::mm_bounds();
    assert!(!bounds.rows.is_empty());
    for row in &bounds.rows {
        assert!(
            row.holds(),
            "MM bound violated at n={} δ={} τ={}: gap {}/{} asynch {}/{} viol {}",
            row.n,
            row.delta,
            row.tau,
            row.observed_gap,
            row.gap_bound,
            row.observed_asynch,
            row.asynch_bound,
            row.violations
        );
    }
}

#[test]
fn e7_theorem4_convergence() {
    let c = ex::convergence();
    assert!(c.holds(), "{c}");
}

#[test]
fn e8_theorem7_bound_holds() {
    let bounds = ex::im_bounds();
    for row in &bounds.rows {
        assert!(
            row.holds(),
            "IM bound violated at n={}: {} vs {}",
            row.n,
            row.observed,
            row.bound
        );
    }
}

#[test]
fn e9_theorem8_error_returns_to_e0() {
    let t = ex::thm8_error_vs_n(&[2, 8, 32, 128], 60);
    assert!(t.converges(), "{t}");
    // Monotone trend along the whole curve (allowing sampling noise of
    // a few percent between adjacent points).
    for pair in t.rows.windows(2) {
        assert!(
            pair[1].ratio <= pair[0].ratio * 1.05,
            "ratio should fall with n: {:?}",
            t.rows
        );
    }
}

#[test]
fn e10_recovery_anecdote() {
    let r = ex::recovery();
    assert!(r.reproduces_shape(), "{r}");
}

#[test]
fn e11_ten_times_slower() {
    let t = ex::ten_x();
    assert!(t.reproduces_shape(), "{t}");
    assert!(
        (8.0..=12.5).contains(&t.speedup),
        "expected ≈10x, got {:.2}x",
        t.speedup
    );
}

#[test]
fn e12_consonance_identifies_racer() {
    let c = ex::consonance();
    assert!(c.identifies_racer(), "{c}");
}

#[test]
fn a1_marzullo_ablation() {
    let a = ex::marzullo_ablation();
    assert!(a.reproduces_shape(), "{a}");
}

#[test]
fn a2_strategy_comparison() {
    let a = ex::strategy_comparison();
    assert!(a.reproduces_shape(), "{a}");
}

#[test]
fn a3_min_delay_ablation() {
    let a = ex::min_delay_ablation();
    for row in &a.rows {
        assert!(row.holds(), "min-delay row failed: {row:?}");
    }
}

#[test]
fn e13_churn_converges() {
    for c in ex::churn() {
        assert!(c.reproduces_shape(), "{c}");
    }
}

#[test]
fn e14_scale_shape() {
    let s = ex::scale();
    assert!(s.reproduces_shape(), "{s}");
}

#[test]
fn e15_loss_is_safe() {
    let l = ex::loss_sweep();
    assert!(l.reproduces_shape(), "{l}");
}

#[test]
fn a4_screening_ablation() {
    let a = ex::screening_ablation();
    assert!(a.reproduces_shape(), "{a}");
}

#[test]
fn e17_fuzz_smoke_is_clean() {
    // A short oracle-gated sweep: every generated deployment must
    // satisfy every theorem its configuration is entitled to.
    let f = ex::fuzz(0..16, 45.0);
    assert_eq!(f.cases_run, 16);
    assert!(f.is_clean(), "{f}");
}
