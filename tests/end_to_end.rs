//! Cross-crate integration tests: full services (clocks + network +
//! protocol) under varied strategies, topologies, faults, and network
//! conditions.

use tempo::clocks::Fault;
use tempo::core::{Duration, Timestamp};
use tempo::net::{DelayModel, Topology};
use tempo::service::Strategy;
use tempo::sim::{Scenario, ServerSpec};
use tempo_core::sync::baseline::BaselineKind;

fn dur(s: f64) -> Duration {
    Duration::from_secs(s)
}

/// Every strategy keeps an all-honest service correct, across seeds.
#[test]
fn all_strategies_correct_on_honest_service() {
    let strategies = [
        Strategy::Mm,
        Strategy::Im,
        Strategy::MarzulloTolerant { max_faulty: 1 },
        Strategy::Baseline(BaselineKind::LamportMax),
        Strategy::Baseline(BaselineKind::Median),
        Strategy::Baseline(BaselineKind::Mean),
    ];
    for strategy in strategies {
        for seed in [1u64, 2, 3] {
            let result = Scenario::new(strategy)
                .servers(4, &ServerSpec::honest(4e-5, 1e-4))
                .duration(dur(200.0))
                .seed(seed)
                .run();
            assert_eq!(
                result.correctness_violations(),
                0,
                "{} seed {seed} violated correctness",
                strategy
            );
        }
    }
}

/// Interval strategies stay correct on ring and star topologies too —
/// the paper only assumes the graph is connected.
#[test]
fn non_mesh_topologies_stay_correct() {
    for (name, topology) in [
        ("ring", Topology::ring(6)),
        ("star", Topology::star(6)),
        ("line", Topology::line(6)),
    ] {
        for strategy in [Strategy::Mm, Strategy::Im] {
            let result = Scenario::new(strategy)
                .servers(6, &ServerSpec::honest(3e-5, 1e-4))
                .topology(topology.clone())
                .duration(dur(300.0))
                .seed(5)
                .run();
            assert_eq!(
                result.correctness_violations(),
                0,
                "{strategy} on {name} violated correctness"
            );
        }
    }
}

/// Ten percent message loss slows convergence but never breaks
/// correctness.
#[test]
fn lossy_network_is_safe() {
    for strategy in [Strategy::Mm, Strategy::Im] {
        let result = Scenario::new(strategy)
            .servers(5, &ServerSpec::honest(4e-5, 1e-4))
            .loss(0.10)
            .duration(dur(300.0))
            .seed(8)
            .run();
        assert_eq!(result.correctness_violations(), 0, "{strategy} under loss");
        assert!(result.net.lost > 0, "loss must actually occur");
    }
}

/// A server whose clock sticks still *reports* honestly growing error
/// bounds only per its claimed drift — it goes incorrect, while honest
/// MM peers ignore its (eventually inconsistent) replies and survive.
#[test]
fn stuck_clock_does_not_poison_mm_peers() {
    let result = Scenario::new(Strategy::Mm)
        .servers(3, &ServerSpec::honest(2e-5, 1e-4))
        .server(ServerSpec::honest(0.0, 1e-4).fault(Fault::stuck_at(Timestamp::from_secs(30.0))))
        .duration(dur(400.0))
        .seed(11)
        .run();
    // Honest servers (0..3) stay correct throughout.
    for row in &result.samples {
        for i in 0..3 {
            assert!(
                row.per_server[i].correct,
                "honest S{i} incorrect at {}",
                row.t
            );
        }
    }
    // The stuck server eventually becomes incorrect.
    assert!(
        result.samples.iter().any(|r| !r.per_server[3].correct),
        "a stuck clock must eventually leave its claimed interval"
    );
}

/// Marzullo(1) keeps honest servers correct while a violently racing
/// peer sprays replies: the racer's interval exits the consistency band
/// within milliseconds of each of its own resets, so its interval is
/// (almost) always disjoint from the honest cluster and the sweep
/// excludes it.
#[test]
fn marzullo_tolerates_wildly_racing_peer() {
    let result = Scenario::new(Strategy::MarzulloTolerant { max_faulty: 1 })
        .servers(4, &ServerSpec::honest(3e-5, 1e-4))
        .server(
            ServerSpec::honest(0.0, 1e-4)
                .fault(Fault::racing_from(Timestamp::from_secs(20.0), 5.0)),
        )
        .duration(dur(300.0))
        .seed(13)
        .run();
    for row in &result.samples {
        for i in 0..4 {
            assert!(
                row.per_server[i].correct,
                "honest S{i} incorrect at {}",
                row.t
            );
        }
    }
}

/// The flip side, straight from §4: "Algorithm IM is particularly
/// susceptible to servers drifting slightly slower or faster than their
/// assumed maximum drift rates." A *mildly* racing peer spends part of
/// each sawtooth consistent-but-incorrect (the Figure 3 state), and
/// while there it can drag the intersection off true time. The
/// excursion is bounded by the width of the consistency band, but it is
/// a real correctness violation — reproducing the paper's warning.
///
/// The demonstration needs *plain* IM: the faulty-tolerant hull with
/// `f ≥ 1` keeps real time covered by the n−1 honest intervals, so a
/// single racing peer cannot push it out. (An earlier version of this
/// test showed the excursion under Marzullo(f=1) — that turned out to
/// be the in-flight round-trip tear fixed in `apply_reset`'s mark
/// rebasing, not the §4 phenomenon.)
#[test]
fn subtle_drift_violation_can_mislead_intersection() {
    let result = Scenario::new(Strategy::Im)
        .servers(4, &ServerSpec::honest(3e-5, 1e-4))
        .server(
            ServerSpec::honest(0.0, 1e-4)
                .fault(Fault::racing_from(Timestamp::from_secs(20.0), 0.05)),
        )
        .duration(dur(300.0))
        .seed(43)
        .run();
    let honest_violations: usize = result
        .samples
        .iter()
        .map(|row| (0..4).filter(|&i| !row.per_server[i].correct).count())
        .sum();
    assert!(
        honest_violations > 0,
        "the §4 susceptibility should manifest with this seed"
    );
    // But the damage is bounded by the consistency band: honest servers
    // never stray more than ~an interval-width from true time.
    for row in &result.samples {
        for i in 0..4 {
            assert!(
                row.per_server[i].true_offset.abs() < dur(0.1),
                "honest S{i} offset {} too large at {}",
                row.per_server[i].true_offset,
                row.t
            );
        }
    }
}

/// …and §5's remedy: the same attack with rate screening enabled — the
/// dissonant peer is detected from its separation rate and excluded,
/// and the violations vanish.
#[test]
fn rate_screening_neutralises_subtle_drift() {
    use tempo::core::DriftRate;
    use tempo::service::ScreeningPolicy;

    let result = Scenario::new(Strategy::Im)
        .servers(4, &ServerSpec::honest(3e-5, 1e-4))
        .server(
            ServerSpec::honest(0.0, 1e-4)
                .fault(Fault::racing_from(Timestamp::from_secs(20.0), 0.05)),
        )
        .screening(ScreeningPolicy::Consonance {
            peer_bound: DriftRate::new(1e-4),
            sample_noise: Duration::from_millis(10.0),
        })
        .duration(dur(300.0))
        .seed(43)
        .run();
    for row in &result.samples {
        for i in 0..4 {
            assert!(
                row.per_server[i].correct,
                "screened honest S{i} incorrect at {}",
                row.t
            );
        }
    }
    let screened: usize = result.final_stats[..4].iter().map(|s| s.screened).sum();
    assert!(screened > 0, "the attacker must actually get screened");
}

/// A mid-run partition splits the service; consistency survives within
/// each side, and after healing the service re-converges.
#[test]
fn partition_heals() {
    use tempo::net::{NetConfig, Partition, World};
    use tempo::service::{ServerConfig, TimeServer};
    use tempo_clocks::{DriftModel, SimClock};
    use tempo_core::DriftRate;

    let n = 6;
    let servers: Vec<TimeServer> = (0..n)
        .map(|i| {
            let drift = if i % 2 == 0 { 4e-5 } else { -4e-5 };
            let clock = SimClock::builder()
                .drift(DriftModel::Constant(drift))
                .seed(i as u64)
                .build();
            TimeServer::new(
                clock,
                ServerConfig::new(Strategy::Im, DriftRate::new(1e-4))
                    .resync_period(dur(10.0))
                    .collect_window(dur(0.5)),
            )
        })
        .collect();
    let partition = Partition {
        from: Timestamp::from_secs(100.0),
        until: Timestamp::from_secs(200.0),
        groups: vec![
            (0..3).map(Into::into).collect(),
            (3..6).map(Into::into).collect(),
        ],
    };
    let net = NetConfig::with_delay(DelayModel::Uniform {
        min: Duration::ZERO,
        max: dur(0.01),
    })
    .partition(partition);
    let mut world = World::new(servers, Topology::full_mesh(n), net, 17);
    world.run_until(Timestamp::from_secs(400.0));
    assert!(
        world.stats().partitioned > 0,
        "partition must block messages"
    );
    let now = world.now();
    for (i, s) in world.actors_mut().iter_mut().enumerate() {
        let sample = s.sample(now);
        assert!(sample.correct, "S{i} incorrect after healing");
    }
}

/// The two-network §3 deployment end-to-end (also exercised by the
/// recovery experiment; this pins the cross-crate plumbing).
#[test]
fn two_network_recovery_deployment() {
    use tempo::clocks::DriftModel;
    use tempo::core::DriftRate;
    use tempo::service::RecoveryPolicy;

    let topology = Topology::from_edges(4, &[(0, 1), (2, 3), (0, 2), (1, 2)]);
    let result = Scenario::new(Strategy::Mm)
        .server(ServerSpec::new(
            DriftModel::Constant(0.042),
            DriftRate::per_day(1.0),
        ))
        .server(ServerSpec::honest(1e-6, 2e-5))
        .server(ServerSpec::honest(-1e-6, 2e-5))
        .server(ServerSpec::honest(0.0, 2e-5))
        .topology(topology)
        .resync_period(dur(30.0))
        .recovery(RecoveryPolicy::ThirdServer)
        .duration(dur(400.0))
        .seed(19)
        .run();
    assert!(result.final_stats[0].recoveries_applied > 0);
    // The honest servers never flinch.
    for row in &result.samples {
        for i in 1..4 {
            assert!(row.per_server[i].correct);
        }
    }
}

/// Identical scenarios are bit-identical across runs (full-stack
/// determinism), and seeds matter.
#[test]
fn full_stack_determinism() {
    let run = |seed: u64| {
        Scenario::new(Strategy::Im)
            .servers(5, &ServerSpec::honest(4e-5, 1e-4))
            .loss(0.05)
            .duration(dur(150.0))
            .seed(seed)
            .run()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.samples.len(), b.samples.len());
    for (ra, rb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(ra.per_server, rb.per_server);
    }
    assert_eq!(a.net, b.net);
    let c = run(43);
    assert_ne!(
        a.last().per_server,
        c.last().per_server,
        "different seeds must diverge"
    );
}

/// IM tightens claimed errors below a free-running clock's growth.
#[test]
fn im_beats_free_running_error_growth() {
    // Drift *diversity* is what lets intersection shrink intervals
    // (Theorem 8): spread the actual drifts across the claimed band.
    let delta = 1e-4;
    let duration = 500.0;
    let mut scenario = Scenario::new(Strategy::Im).duration(dur(duration)).seed(23);
    for (i, frac) in [0.8f64, -0.8, 0.4, -0.4, 0.1, -0.1].iter().enumerate() {
        let _ = i;
        scenario = scenario.server(ServerSpec::honest(frac * delta, delta));
    }
    let result = scenario.run();
    assert_eq!(result.correctness_violations(), 0);
    let free_running = 0.01 + delta * duration; // ε0 + δ·t
    let worst = result.last().max_error().as_secs();
    assert!(
        worst < free_running / 2.0,
        "synchronized error {worst} should be well below free-running {free_running}"
    );
}

/// ApplyMode::Slew end-to-end: every server's *served* clock is
/// monotone across the whole run while correctness still holds — the
/// §1.1 monotonic clock provided by the service itself.
#[test]
fn slewing_service_is_monotonic_and_correct() {
    use tempo::service::ApplyMode;

    let mut scenario = Scenario::new(Strategy::Im)
        .apply(ApplyMode::Slew { max_rate: 5e-3 })
        .duration(dur(300.0))
        .sample_interval(dur(0.5))
        .seed(29);
    for frac in [0.8f64, -0.8, 0.4, -0.4, 0.1] {
        scenario = scenario.server(ServerSpec::honest(frac * 1e-4, 1e-4));
    }
    let result = scenario.run();
    assert_eq!(result.correctness_violations(), 0);
    let n = result.samples[0].per_server.len();
    for i in 0..n {
        let mut last = f64::MIN;
        for row in &result.samples {
            let reading = row.per_server[i].clock.as_secs();
            assert!(
                reading >= last,
                "S{i}'s served clock regressed at {}",
                row.t
            );
            last = reading;
        }
    }
}
