//! Workspace-level property tests: randomly configured honest services
//! must satisfy the paper's safety properties end-to-end.

use proptest::prelude::*;

use tempo::core::Duration;
use tempo::sim::{Scenario, ServerSpec};

fn dur(s: f64) -> Duration {
    Duration::from_secs(s)
}

fn strategy() -> impl Strategy<Value = tempo::service::Strategy> {
    prop_oneof![
        Just(tempo::service::Strategy::Mm),
        Just(tempo::service::Strategy::Im),
        Just(tempo::service::Strategy::MarzulloTolerant { max_faulty: 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 / Theorem 5, end to end: an initially correct service
    /// of honest servers remains correct, whatever the topology of
    /// drifts, the delays, and the scheduling.
    #[test]
    fn honest_services_stay_correct(
        strategy in strategy(),
        n in 2usize..7,
        drift_fracs in prop::collection::vec(-0.9f64..0.9, 7),
        delta_exp in 1.0f64..3.0, // δ ∈ [1e-5, 1e-3]
        max_delay_ms in 0.5f64..20.0,
        tau in 5.0f64..25.0,
        seed in 0u64..1000,
    ) {
        let delta = 10f64.powf(-2.0 - delta_exp);
        let mut scenario = Scenario::new(strategy)
            .delay(tempo::net::DelayModel::Uniform {
                min: Duration::ZERO,
                max: Duration::from_millis(max_delay_ms),
            })
            .resync_period(dur(tau))
            .collect_window(dur((4.0 * max_delay_ms / 1000.0).min(tau / 3.0)))
            .duration(dur(tau * 10.0))
            .sample_interval(dur(tau / 3.0))
            .seed(seed);
        for frac in drift_fracs.iter().take(n) {
            scenario = scenario.server(ServerSpec::honest(frac * delta, delta));
        }
        let result = scenario.run();
        prop_assert_eq!(result.correctness_violations(), 0);
        // Correct servers are pairwise consistent (§2.3), hence so is
        // every sample row.
        for row in &result.samples {
            for i in 0..n {
                for j in 0..n {
                    let a = row.per_server[i].estimate();
                    let b = row.per_server[j].estimate();
                    prop_assert!(a.is_consistent_with(&b));
                }
            }
        }
    }

    /// Lemma 3 end-to-end: the minimum claimed error in an MM service
    /// never decreases between samples.
    #[test]
    fn mm_minimum_error_never_decreases(
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        let result = Scenario::new(tempo::service::Strategy::Mm)
            .servers(n, &ServerSpec::honest(4e-5, 1e-4))
            .duration(dur(150.0))
            .sample_interval(dur(2.0))
            .seed(seed)
            .run();
        let mut prev = Duration::ZERO;
        for row in &result.samples {
            let min = row.min_error();
            prop_assert!(
                min >= prev - Duration::from_secs(1e-12),
                "E_M decreased: {} -> {}", prev, min
            );
            prev = min;
        }
    }

    /// Determinism under arbitrary seeds: the same scenario twice gives
    /// identical traces.
    #[test]
    fn runs_are_reproducible(seed in 0u64..10_000) {
        let build = || {
            Scenario::new(tempo::service::Strategy::Im)
                .servers(3, &ServerSpec::honest(3e-5, 1e-4))
                .loss(0.02)
                .duration(dur(60.0))
                .seed(seed)
                .run()
        };
        let a = build();
        let b = build();
        for (ra, rb) in a.samples.iter().zip(&b.samples) {
            prop_assert_eq!(&ra.per_server, &rb.per_server);
        }
    }
}
