//! # tempo
//!
//! An interval-based distributed time service: a complete, simulation-
//! backed reproduction of Keith Marzullo and Susan Owicki, *Maintaining
//! the Time in a Distributed System* (Stanford CSL TR 83-247 /
//! PODC 1983) — the paper whose intersection algorithm grew into NTP's
//! clock selection.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] ([`tempo_core`]) — intervals, estimates, and the pure
//!   synchronization functions (algorithms MM and IM, the fault-tolerant
//!   Marzullo sweep, NTP-style selection, consistency, consonance),
//! * [`clocks`] ([`tempo_clocks`]) — simulated drifting/faulty clocks,
//! * [`net`] ([`tempo_net`]) — the deterministic discrete-event network,
//! * [`service`] ([`tempo_service`]) — the time-server/client protocol,
//! * [`sim`] ([`tempo_sim`]) — scenarios, metrics, and the experiment
//!   library regenerating every figure of the paper,
//! * [`telemetry`] ([`tempo_telemetry`]) — the typed event bus every
//!   layer publishes on, with a JSONL codec and schema validator.
//!
//! ## Quickstart
//!
//! ```
//! use tempo::core::Duration;
//! use tempo::service::Strategy;
//! use tempo::sim::{Scenario, ServerSpec};
//!
//! // Five servers with ±50 ppm clocks, synchronising by intersection.
//! let result = Scenario::new(Strategy::Im)
//!     .servers(5, &ServerSpec::honest(5e-5, 1e-4))
//!     .duration(Duration::from_secs(300.0))
//!     .run();
//! assert_eq!(result.correctness_violations(), 0);
//! println!("worst asynchronism: {}", result.max_asynchronism());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tempo_clocks as clocks;
pub use tempo_core as core;
pub use tempo_net as net;
pub use tempo_service as service;
pub use tempo_sim as sim;
pub use tempo_telemetry as telemetry;
