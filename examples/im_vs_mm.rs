//! Algorithm IM versus algorithm MM on identical hardware, delays, and
//! seeds — the §4 comparison, printed as an error-growth table.
//!
//! ```text
//! cargo run --example im_vs_mm
//! ```

use tempo::core::Duration;
use tempo::net::DelayModel;
use tempo::service::Strategy;
use tempo::sim::{RunResult, Scenario, ServerSpec};

fn run(strategy: Strategy) -> RunResult {
    // δ "chosen casually": everyone claims 100 ppm, actual drifts spread
    // to ±90 ppm in both directions.
    let delta = 1e-4;
    let actuals = [0.9e-4, -0.9e-4, 0.45e-4, -0.45e-4];
    let mut scenario = Scenario::new(strategy)
        .delay(DelayModel::Uniform {
            min: Duration::ZERO,
            max: Duration::from_micros(200.0),
        })
        .resync_period(Duration::from_secs(60.0))
        .collect_window(Duration::from_secs(0.05))
        .duration(Duration::from_secs(6_000.0))
        .sample_interval(Duration::from_secs(60.0))
        .seed(31);
    for &a in &actuals {
        scenario =
            scenario.server(ServerSpec::honest(a, delta).initial_error(Duration::from_millis(5.0)));
    }
    scenario.run()
}

fn main() {
    let mm = run(Strategy::Mm);
    let im = run(Strategy::Im);

    println!("mean claimed error over time, MM vs IM (identical clocks & seeds)");
    println!("{:>8}  {:>12}  {:>12}", "t", "MM mean E", "IM mean E");
    for (a, b) in mm
        .mean_error_series()
        .iter()
        .zip(im.mean_error_series().iter())
        .step_by(10)
    {
        println!(
            "{:>7.0}s  {:>11.1}ms  {:>11.1}ms",
            a.0,
            a.1 * 1e3,
            b.1 * 1e3
        );
    }

    println!();
    print!(
        "{}",
        tempo::sim::plot::ascii_chart(&mm.mean_error_series(), 60, 10, "MM mean claimed error (s)")
    );
    print!(
        "{}",
        tempo::sim::plot::ascii_chart(&im.mean_error_series(), 60, 10, "IM mean claimed error (s)")
    );

    let skip = 40;
    let mm_slope = RunResult::slope(&mm.mean_error_series().split_off(skip));
    let im_slope = RunResult::slope(&im.mean_error_series().split_off(skip));
    println!(
        "MM slope {:.2e} s/s, IM slope {:.2e} s/s → IM grows {:.1}x slower",
        mm_slope,
        im_slope,
        mm_slope / im_slope
    );
    println!(
        "asynchronism: MM {}, IM {}",
        mm.max_asynchronism(),
        im.max_asynchronism()
    );
    println!(
        "violations: MM {}, IM {}",
        mm.correctness_violations(),
        im.correctness_violations()
    );
}
