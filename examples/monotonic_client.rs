//! The §1.1 monotonic clock: the service freely steps clocks backward,
//! but a client can still derive a locally monotonic clock by slewing
//! through the steps.
//!
//! ```text
//! cargo run --example monotonic_client
//! ```

use tempo::clocks::{DriftModel, MonotonicClock, SimClock};
use tempo::core::Timestamp;

fn main() {
    // A clock that runs 2 % fast and gets stepped back to true time by
    // its time server every 20 seconds.
    let mut raw = SimClock::builder()
        .drift(DriftModel::Constant(0.02))
        .build();
    let mut mono = MonotonicClock::new(0.5);

    println!("{:>6}  {:>10}  {:>10}  note", "t", "raw", "monotonic");
    let mut prev_mono = f64::MIN;
    for tick in 0..=120 {
        let now = Timestamp::from_secs(f64::from(tick));
        let mut note = "";
        if tick > 0 && tick % 20 == 0 {
            // The server resets the fast clock backward to true time.
            let _ = raw.set(now, now);
            note = "← server stepped the clock back";
        }
        let r = raw.read(now);
        let m = mono.observe(r);
        assert!(
            m.as_secs() >= prev_mono,
            "monotonicity violated at t={tick}"
        );
        prev_mono = m.as_secs();
        if tick % 4 == 0 || !note.is_empty() {
            println!(
                "{:>5}s  {:>9.3}s  {:>9.3}s  {note}",
                tick,
                r.as_secs(),
                m.as_secs()
            );
        }
    }
    println!("raw clock stepped backward 6 times; monotonic reading never decreased ✓");
}
