//! A miniature Xerox Research Internet: three full-mesh networks joined
//! by gateway links, eighteen time servers of wildly varying quality,
//! and three workstation clients querying with the three client
//! strategies of the paper (§1/§3/§4).
//!
//! ```text
//! cargo run --example xerox_internet
//! ```

use tempo::clocks::{DriftModel, SimClock};
use tempo::core::{DriftRate, Duration, Timestamp};
use tempo::net::{DelayModel, NetConfig, Topology, World};
use tempo::service::{ClientStrategy, ServerConfig, ServiceNode, Strategy, TimeClient, TimeServer};

fn server(seed: u64, drift: f64, bound: f64) -> ServiceNode {
    let clock = SimClock::builder()
        .drift(DriftModel::RandomWalk {
            sigma: bound / 50.0,
            bound: drift.abs().max(bound / 10.0),
            quantum: Duration::from_secs(30.0),
        })
        .seed(seed)
        .build();
    TimeServer::new(
        clock,
        ServerConfig::new(Strategy::Im, DriftRate::new(bound))
            .resync_period(Duration::from_secs(20.0))
            .collect_window(Duration::from_secs(1.0)),
    )
    .into()
}

fn main() {
    // Nodes 0-5: "Palo Alto" (net A); 6-11: "Webster" (net B);
    // 12-17: "Rochester" (net C); 18-20: workstation clients.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for base in [0usize, 6, 12] {
        for a in base..base + 6 {
            for b in (a + 1)..base + 6 {
                edges.push((a, b));
            }
        }
    }
    // Gateway links between the networks.
    edges.extend([(0, 6), (6, 12), (12, 0)]);
    // Each client talks to three servers of its home network.
    edges.extend([(18, 0), (18, 1), (18, 2)]);
    edges.extend([(19, 6), (19, 7), (19, 8)]);
    edges.extend([(20, 12), (20, 13), (20, 14)]);
    let topology = Topology::from_edges(21, &edges);
    assert!(topology.is_connected());

    let mut nodes: Vec<ServiceNode> = Vec::new();
    for i in 0..18u64 {
        // Clock quality varies: most machines are ~20 ppm, a few public
        // servers have lab-grade 2 ppm clocks, some are sloppy 200 ppm.
        let bound = match i % 6 {
            0 => 2e-6,
            5 => 2e-4,
            _ => 2e-5,
        };
        nodes.push(server(i, bound * 0.8, bound));
    }
    nodes.push(
        TimeClient::new(
            ClientStrategy::FirstReply,
            Duration::from_secs(30.0),
            Duration::from_secs(2.0),
        )
        .into(),
    );
    nodes.push(
        TimeClient::new(
            ClientStrategy::SmallestError,
            Duration::from_secs(30.0),
            Duration::from_secs(2.0),
        )
        .into(),
    );
    nodes.push(
        TimeClient::new(
            ClientStrategy::Intersection,
            Duration::from_secs(30.0),
            Duration::from_secs(2.0),
        )
        .into(),
    );

    // Cross-country links are slower than LAN hops.
    let mut net = NetConfig::with_delay(DelayModel::TruncatedExp {
        min: Duration::from_millis(1.0),
        mean: Duration::from_millis(8.0),
        max: Duration::from_millis(60.0),
    })
    .loss(0.01);
    for (a, b) in [(0usize, 6usize), (6, 12), (12, 0)] {
        for (x, y) in [(a, b), (b, a)] {
            net = net.link_override(
                x.into(),
                y.into(),
                DelayModel::TruncatedExp {
                    min: Duration::from_millis(20.0),
                    mean: Duration::from_millis(40.0),
                    max: Duration::from_millis(150.0),
                },
            );
        }
    }

    let mut world = World::new(nodes, topology, net, 2026);
    world.run_until(Timestamp::from_secs(1_800.0));
    let now = world.now();

    println!("30 simulated minutes of an 18-server, 3-network internet");
    println!(
        "  messages: {} sent, {} delivered, {} lost",
        world.stats().sent,
        world.stats().delivered,
        world.stats().lost
    );

    for (name, range) in [
        ("Palo Alto", 0..6),
        ("Webster", 6..12),
        ("Rochester", 12..18),
    ] {
        let mut worst_offset = Duration::ZERO;
        let mut worst_error = Duration::ZERO;
        let mut all_correct = true;
        for i in range {
            let s = world.actors_mut()[i].as_server_mut().expect("server node");
            let sample = s.sample(now);
            worst_offset = worst_offset.max(sample.true_offset.abs());
            worst_error = worst_error.max(sample.error);
            all_correct &= sample.correct;
        }
        println!(
            "  {name:<10} worst offset {worst_offset}, worst claimed error {worst_error}, all correct: {all_correct}"
        );
    }

    for i in 18..21 {
        let c = world.actors()[i].as_client().expect("client node");
        let correct = c.observations().iter().filter(|o| o.correct()).count();
        println!(
            "  client {:<15} {} queries, {} correct",
            c.strategy().to_string(),
            c.observations().len(),
            correct
        );
    }
}
