//! Server-side slewing: the same IM service run twice — stepping clocks
//! (the paper's rules, clocks "freely set backward as well as forward")
//! versus slewing corrections in gradually (`ApplyMode::Slew`). The
//! slewing service serves locally monotonic time to every client while
//! still keeping every server provably correct.
//!
//! ```text
//! cargo run --example slewing_service
//! ```

use tempo::core::Duration;
use tempo::service::{ApplyMode, Strategy};
use tempo::sim::{Scenario, ServerSpec};

fn run(apply: ApplyMode) -> (usize, usize, f64) {
    // Deliberately sloppy clocks (±0.9 %) so each reset is a visible
    // ~90 ms correction — far larger than the 40 ms sampling stride.
    let mut scenario = Scenario::new(Strategy::Im)
        .apply(apply)
        .resync_period(Duration::from_secs(10.0))
        .duration(Duration::from_secs(300.0))
        .sample_interval(Duration::from_secs(0.04))
        .seed(33);
    for frac in [0.9f64, -0.9, 0.5, -0.5] {
        scenario = scenario.server(ServerSpec::honest(frac * 1e-2, 1e-2));
    }
    let result = scenario.run();

    // Count backward steps of served clocks between samples.
    let n = result.samples[0].per_server.len();
    let mut regressions = 0;
    for i in 0..n {
        let mut last = f64::MIN;
        for row in &result.samples {
            let reading = row.per_server[i].clock.as_secs();
            if reading < last {
                regressions += 1;
            }
            last = reading;
        }
    }
    (
        regressions,
        result.correctness_violations(),
        result.last().mean_error().as_secs(),
    )
}

fn main() {
    let (step_regr, step_viol, step_err) = run(ApplyMode::Step);
    let (slew_regr, slew_viol, slew_err) = run(ApplyMode::Slew { max_rate: 2e-2 });

    println!("four ±0.9% servers, IM, 300 s, sampled every 40 ms");
    println!();
    println!("                 backward steps  violations  final mean E");
    println!(
        "  step (paper)   {step_regr:>14}  {step_viol:>10}  {:.1}ms",
        step_err * 1e3
    );
    println!(
        "  slew (ours)    {slew_regr:>14}  {slew_viol:>10}  {:.1}ms",
        slew_err * 1e3
    );
    println!();
    assert!(step_regr > 0, "stepping clocks must visibly step back");
    assert_eq!(slew_regr, 0, "slewing clocks must never step back");
    assert_eq!(step_viol, 0);
    assert_eq!(slew_viol, 0);
    println!("slewing trades nothing in correctness for local monotonicity ✓");
    println!("(the outstanding correction is carried in the reported error —");
    println!(" the ⟨C, E⟩ interval still always contains true time; the visible");
    println!(" price is a wider claimed bound while corrections drain)");
}
