//! The §3 recovery experiment, replayed as a narrative: a server whose
//! clock runs an hour per day fast while claiming one second per day,
//! recovering through a server on another network every time it finds
//! itself inconsistent with its neighbour.
//!
//! ```text
//! cargo run --example faulty_clock_recovery
//! ```

use tempo::clocks::DriftModel;
use tempo::core::{DriftRate, Duration};
use tempo::net::{DelayModel, Topology};
use tempo::service::{RecoveryPolicy, Strategy};
use tempo::sim::{Scenario, ServerSpec};

fn main() {
    let claimed = DriftRate::per_day(1.0); // "one second a day"
    let actual = 0.042; // "closer to one hour a day (about four percent fast)"
    let tau = 60.0;

    // Network A = {S0 (the bad clock), S1}; network B = {S2, S3}; both
    // A-servers can reach S2 through gateway links.
    let topology = Topology::from_edges(4, &[(0, 1), (2, 3), (0, 2), (1, 2)]);

    let scenario = Scenario::new(Strategy::Mm)
        .server(ServerSpec::new(DriftModel::Constant(actual), claimed))
        .server(ServerSpec::honest(1e-6, claimed.as_f64()))
        .server(ServerSpec::honest(-1e-6, claimed.as_f64()))
        .server(ServerSpec::honest(0.5e-6, claimed.as_f64()))
        .topology(topology)
        .delay(DelayModel::Uniform {
            min: Duration::ZERO,
            max: Duration::from_millis(10.0),
        })
        .resync_period(Duration::from_secs(tau))
        .recovery(RecoveryPolicy::ThirdServer)
        .duration(Duration::from_secs(tau * 15.0))
        .sample_interval(Duration::from_secs(tau / 20.0))
        .seed(7);
    let result = scenario.run();

    println!(
        "the bad clock drifts at {:.1}% while claiming {:.1e} s/s",
        actual * 100.0,
        claimed.as_f64()
    );
    println!("its true offset over time (sawtooth = drift, then recovery):");
    let series = result.offset_series(0);
    let mut last_shown = f64::MIN;
    for &(t, offset) in &series {
        // Show one line every ~2 minutes plus every big downward jump.
        if t - last_shown >= 120.0 {
            let bar_len = (offset.abs() * 10.0).min(60.0) as usize;
            println!(
                "  t={t:>6.0}s  offset {offset:>8.3}s  {}",
                "#".repeat(bar_len)
            );
            last_shown = t;
        }
    }

    let stats = result.final_stats[0];
    println!(
        "recoveries: {} started, {} applied",
        stats.recoveries_started, stats.recoveries_applied
    );
    let max_offset = series.iter().map(|&(_, o)| o.abs()).fold(0.0f64, f64::max);
    println!(
        "worst excursion {max_offset:.3}s ≈ drift × τ = {:.3}s — \"very far off by the time it reset\"",
        actual * tau
    );
    assert!(stats.recoveries_applied > 0);
}
