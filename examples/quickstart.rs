//! Quickstart: a five-server time service synchronising by interval
//! intersection (algorithm IM), checked against simulated true time.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tempo::core::Duration;
use tempo::service::Strategy;
use tempo::sim::{Scenario, ServerSpec};

fn main() {
    // Five servers with ±50 ppm quartz and an honest 100 ppm claimed
    // bound, polling each other every 10 seconds over a network with up
    // to 10 ms one-way delay.
    let result = Scenario::new(Strategy::Im)
        .servers(5, &ServerSpec::honest(5e-5, 1e-4))
        .resync_period(Duration::from_secs(10.0))
        .duration(Duration::from_secs(600.0))
        .seed(1)
        .run();

    println!("simulated 600 s of a 5-server IM time service");
    println!("  messages sent:        {}", result.net.sent);
    println!(
        "  clock resets applied: {}",
        result.final_stats.iter().map(|s| s.resets).sum::<usize>()
    );
    println!(
        "  correctness violations: {}",
        result.correctness_violations()
    );
    println!("  worst asynchronism:     {}", result.max_asynchronism());

    let last = result.last();
    println!("final state (true offsets and claimed errors):");
    for (i, s) in last.per_server.iter().enumerate() {
        println!(
            "  S{i}: offset {:>12}  error {:>12}  correct: {}",
            s.true_offset.to_string(),
            s.error.to_string(),
            s.correct
        );
    }
    assert_eq!(result.correctness_violations(), 0);
    println!("every server stayed correct for the whole run ✓");
}
