//! The NTP-lineage post-processing pipeline built from this paper's
//! primitives: per-peer clock filters (minimum-delay sample selection),
//! the cluster algorithm, weighted combining — and, alongside it, the
//! Marzullo interval intersection producing the correctness *bound* the
//! filters cannot give.
//!
//! ```text
//! cargo run --example ntp_pipeline
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tempo::core::filter::{cluster, combine, ClockFilter, FilterSample, PeerEstimate};
use tempo::core::marzullo::best_intersection;
use tempo::core::{Duration, TimeInterval, Timestamp};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Five peers; peer 4's clock is broken (600 ms off). Each produces
    // eight (offset, delay) measurements with delay-correlated noise —
    // the longer the path queueing, the worse the offset.
    let true_offsets = [0.003, -0.002, 0.001, 0.004, 0.600];
    let mut filters: Vec<ClockFilter> = (0..5).map(|_| ClockFilter::new(8)).collect();
    for (peer, filter) in filters.iter_mut().enumerate() {
        for k in 0..8 {
            let queueing = rng.random_range(0.0..0.030);
            let delay = 0.004 + queueing;
            let offset = true_offsets[peer] + queueing * rng.random_range(-0.5..0.5);
            filter.push(FilterSample::new(
                Duration::from_secs(offset),
                Duration::from_secs(delay),
                Timestamp::from_secs(f64::from(k)),
            ));
        }
    }

    println!("peer  best offset  best delay   jitter");
    let peers: Vec<PeerEstimate> = filters
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let best = f.best().expect("eight samples each");
            println!(
                "  {i}   {:>10}  {:>10}  {:>8}",
                best.offset.to_string(),
                best.delay.to_string(),
                f.jitter().to_string()
            );
            PeerEstimate::new(best.offset, f.jitter(), best.delay)
        })
        .collect();

    let survivors = cluster(&peers, 1);
    println!("cluster survivors: {survivors:?} (the broken peer is pruned)");
    let combined = combine(&peers, &survivors).expect("survivors non-empty");
    println!("combined offset: {combined}");

    // The interval view of the same peers: each best sample as the
    // interval [offset − delay, offset + delay]; the Marzullo sweep
    // yields a *bound*, not just a point.
    let intervals: Vec<TimeInterval> = peers
        .iter()
        .map(|p| {
            TimeInterval::from_center_radius(
                Timestamp::ZERO + p.offset,
                p.error, // the best sample's delay as the error bound
            )
        })
        .collect();
    let tight = best_intersection(&intervals).expect("non-empty input");
    println!(
        "Marzullo: {} of 5 intervals agree on [{} .. {}]",
        tight.coverage,
        tight.best().interval.lo(),
        tight.best().interval.hi()
    );

    assert!(!survivors.contains(&4), "the broken peer must not survive");
    assert!(combined.abs() < Duration::from_millis(10.0));
    assert!(tight.coverage >= 3);
    println!("pipeline agrees with the interval bound ✓");
}
