//! Watching Figure 4 happen: a six-server service is partitioned into
//! three cells; within each cell the servers keep each other tight
//! while the cells drift apart, and the service decomposes into the
//! paper's three consistency groups.
//!
//! The punchline is the §5 observation: when the *network* heals, the
//! *service* does not — the cells' intervals no longer overlap, every
//! cross-cell reply is rejected as inconsistent, and the groups persist
//! indefinitely. Only the §3 recovery rule ("reset to the value of any
//! third server") re-merges them.
//!
//! ```text
//! cargo run --example consistency_groups
//! ```

use tempo::clocks::{DriftModel, SimClock};
use tempo::core::DriftRate;
use tempo::core::{Duration, Timestamp};
use tempo::net::{DelayModel, NetConfig, Partition, Topology, World};
use tempo::service::{RecoveryPolicy, ServerConfig, Strategy, TimeServer};
use tempo_core::consistency::consistency_groups;

fn run(recovery: RecoveryPolicy) -> Vec<(f64, usize)> {
    // Three cells of two servers; each cell has a distinct drift
    // direction so the cells separate while partitioned. Claimed bounds
    // are deliberately *understated* (1/4 of actual) so the intervals
    // cannot absorb the separation — the §5 precondition for
    // inconsistency.
    let drifts = [3e-4, 3.2e-4, -2.8e-4, -3e-4, 1e-5, -1e-5];
    let claimed = 8e-5;
    let servers: Vec<TimeServer> = drifts
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let clock = SimClock::builder()
                .drift(DriftModel::Constant(d))
                .seed(i as u64)
                .build();
            TimeServer::new(
                clock,
                ServerConfig::new(Strategy::Im, DriftRate::new(claimed))
                    .resync_period(Duration::from_secs(10.0))
                    .collect_window(Duration::from_secs(0.5))
                    .initial_error(Duration::from_millis(20.0))
                    .recovery(recovery),
            )
        })
        .collect();

    let cell = |nodes: [usize; 2]| nodes.map(Into::into).to_vec();
    let partition = Partition {
        from: Timestamp::from_secs(50.0),
        until: Timestamp::from_secs(350.0),
        groups: vec![cell([0, 1]), cell([2, 3]), cell([4, 5])],
    };
    let mut world = World::new(
        servers,
        Topology::full_mesh(6),
        NetConfig::with_delay(DelayModel::Constant(Duration::from_millis(5.0)))
            .partition(partition),
        11,
    );

    let mut history = Vec::new();
    for checkpoint in [40.0, 150.0, 349.0, 420.0, 600.0, 900.0] {
        world.run_until(Timestamp::from_secs(checkpoint));
        let now = world.now();
        let intervals: Vec<_> = world
            .actors_mut()
            .iter_mut()
            .map(|s| s.current_estimate(now).interval())
            .collect();
        let groups = consistency_groups(&intervals);
        let rendered: Vec<String> = groups
            .iter()
            .map(|g| {
                let members: Vec<String> =
                    g.members.iter().map(|m| format!("S{}", m + 1)).collect();
                format!("{{{}}}", members.join(","))
            })
            .collect();
        println!(
            "{checkpoint:>5.0}s  {} group(s): {}",
            groups.len(),
            rendered.join("  ")
        );
        history.push((checkpoint, groups.len()));
    }
    history
}

fn main() {
    println!("partition t=50..350s; network heals afterwards");
    println!();
    println!("— without recovery (bare IM) —");
    let bare = run(RecoveryPolicy::Ignore);
    println!();
    println!("— with the §3 third-server recovery —");
    let recovered = run(RecoveryPolicy::ThirdServer);

    // While partitioned, both decompose into Figure 4-style groups.
    let groups_at =
        |h: &[(f64, usize)], t: f64| h.iter().find(|&&(ht, _)| ht == t).map(|&(_, g)| g).unwrap();
    assert!(
        groups_at(&bare, 349.0) >= 3,
        "partition must split the service"
    );
    // Without recovery the split outlives the partition (§5's point):
    assert!(
        groups_at(&bare, 900.0) >= 3,
        "bare IM must stay partitioned into consistency groups"
    );
    // With §3 recovery the cells re-knit (the clocks still violate
    // their claimed bounds, so perfect service-wide consistency is out
    // of reach — the §3 caveat about several incorrect servers — but
    // the disjoint cells are gone).
    assert!(
        groups_at(&recovered, 900.0) < groups_at(&bare, 900.0),
        "recovery must reduce the fragmentation"
    );
    println!();
    println!("the network healed at t=350s; only §3 recovery re-knit the *service* ✓");
}
